//! The crash-safe campaign driver: batches of simulation jobs through the
//! `raccd-campaign` service, durable against `kill -9`.
//!
//! ```text
//! cargo run --release -p raccd-bench --bin campaign -- \
//!     --ledger runs/campaign.jsonl \
//!     [--gen N | --spec "bench=Jacobi scale=test mode=raccd seeds=1..8" | --spec-file F] \
//!     [--scale test|bench] [--workers N] [--queue-cap N] [--retries N] \
//!     [--timeout-ms N] [--dedup-probe] [--report F] [--events F] \
//!     [--depth-csv F] [--bench-json F]
//! ```
//!
//! **Resume = rerun the same command.** Opening an existing ledger replays
//! it: completed jobs come back as cached results, mid-flight leases as
//! queued work, and resubmitting the same specs is absorbed by dedup — so
//! a campaign killed anywhere finishes with zero duplicated executions and
//! zero lost jobs (the report's reconciliation block proves it; exit code
//! 1 if it cannot).
//!
//! `--gen N` expands a deterministic N-job matrix (benchmarks × {fullcoh,
//! pt, raccd} × ratios {4, 8}, warm-started, seeds split evenly) — the CI
//! soak and the `BENCH_8.json` throughput point both use it.
//! `--dedup-probe` submits every spec a second time after admission; the
//! second pass must dedup completely, which pins the fingerprint/dedup
//! path in the perf document.

use raccd_bench::perfjson::{git_rev, host_fingerprint, BenchDoc, PerfJob, SCHEMA_VERSION};
use raccd_bench::{bench_names, scale_from_args};
use raccd_campaign::{Campaign, CampaignConfig, JobSpec};
use raccd_core::CoherenceMode;
use raccd_obs::{write_campaign_depth_csv, write_events_jsonl, RunMetrics};
use raccd_workloads::Scale;
use std::path::PathBuf;

/// Deterministic `--gen` matrix: spread `n` seeded jobs evenly over the
/// benchmark × mode × ratio grid, warm-started so the snapshot pool earns
/// its keep.
fn gen_matrix(scale: Scale, n: u64) -> Vec<JobSpec> {
    let names = bench_names(scale);
    let modes = [
        CoherenceMode::FullCoh,
        CoherenceMode::PageTable,
        CoherenceMode::Raccd,
    ];
    let ratios = [4usize, 8];
    let mut configs = Vec::new();
    for name in &names {
        for &mode in &modes {
            for &ratio in &ratios {
                let mut s = JobSpec::new(name, scale, mode);
                s.ratio = ratio;
                s.warmup = 2_000;
                configs.push(s);
            }
        }
    }
    let nc = configs.len() as u64;
    configs
        .into_iter()
        .enumerate()
        .filter_map(|(i, mut s)| {
            let count = n / nc + u64::from((i as u64) < n % nc);
            (count > 0).then(|| {
                s.seed_lo = 1;
                s.seed_hi = count;
                s
            })
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pick = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_or = |flag: &str, default: u64| -> u64 {
        pick(flag)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{flag}: bad value `{v}`"))
            })
            .unwrap_or(default)
    };

    let ledger = PathBuf::from(pick("--ledger").unwrap_or_else(|| "campaign.jsonl".into()));
    let scale = scale_from_args(&args);
    let mut config = CampaignConfig::default();
    config.workers = parse_or("--workers", config.workers as u64) as usize;
    config.queue_cap = parse_or("--queue-cap", config.queue_cap as u64) as usize;
    config.retry_budget = parse_or("--retries", config.retry_budget as u64) as u32;
    config.timeout_ms = parse_or("--timeout-ms", 120_000);

    let mut specs: Vec<JobSpec> = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--spec" {
            let line = args.get(i + 1).expect("--spec needs a value");
            specs.push(JobSpec::parse(line).unwrap_or_else(|e| panic!("--spec: {e}")));
        }
    }
    if let Some(f) = pick("--spec-file") {
        let text = std::fs::read_to_string(&f).unwrap_or_else(|e| panic!("--spec-file {f}: {e}"));
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            specs.push(JobSpec::parse(line).unwrap_or_else(|e| panic!("{f}: {e}")));
        }
    }
    if let Some(n) = pick("--gen") {
        let n: u64 = n
            .parse()
            .unwrap_or_else(|_| panic!("--gen: bad count `{n}`"));
        specs.extend(gen_matrix(scale, n));
    }

    let campaign = Campaign::open(&ledger, config).unwrap_or_else(|e| {
        panic!("opening ledger {}: {e}", ledger.display());
    });

    let mut admitted = 0u64;
    let mut deduped = 0u64;
    let mut shed = 0u64;
    let mut submit = |spec: &JobSpec| {
        let s = campaign
            .submit(spec)
            .unwrap_or_else(|e| panic!("submit {}: {e}", spec.render()));
        admitted += s.admitted;
        deduped += s.deduped;
        shed += s.shed;
    };
    for spec in &specs {
        submit(spec);
    }
    if args.iter().any(|a| a == "--dedup-probe") {
        // Second pass over the same batch: everything must dedup.
        for spec in &specs {
            submit(spec);
        }
    }
    eprintln!(
        "campaign: {} admitted, {} deduped, {} shed (ledger {})",
        admitted,
        deduped,
        shed,
        ledger.display()
    );

    let report = campaign
        .run()
        .unwrap_or_else(|e| panic!("campaign run: {e}"));
    println!("{}", report.to_json());
    if let Some(p) = pick("--report") {
        std::fs::write(&p, report.to_json() + "\n")
            .unwrap_or_else(|e| panic!("writing report {p}: {e}"));
    }
    if let Some(p) = pick("--events") {
        let mut w = std::io::BufWriter::new(
            std::fs::File::create(&p).unwrap_or_else(|e| panic!("creating {p}: {e}")),
        );
        write_events_jsonl(&[], &campaign.events(), &mut w)
            .unwrap_or_else(|e| panic!("writing events {p}: {e}"));
    }
    if let Some(p) = pick("--depth-csv") {
        let mut w = std::io::BufWriter::new(
            std::fs::File::create(&p).unwrap_or_else(|e| panic!("creating {p}: {e}")),
        );
        write_campaign_depth_csv(&campaign.events(), &mut w)
            .unwrap_or_else(|e| panic!("writing depth csv {p}: {e}"));
    }

    if let Some(p) = pick("--bench-json") {
        let results = campaign.results();
        let total_cycles: u64 = results.iter().map(|(_, d)| d.cycles).sum();
        let total_tasks: u64 = results.iter().map(|(_, d)| d.tasks).sum();
        let wall = (report.elapsed_ms as f64 / 1000.0).max(1e-9);
        let (host, ncpu) = host_fingerprint();
        let metric = |name: &str, wall_seconds: f64, sim_cycles: u64, tasks: u64| RunMetrics {
            name: name.to_string(),
            wall_seconds,
            sim_cycles,
            tasks_executed: tasks,
            ..RunMetrics::default()
        };
        let job = |name: &str, m: RunMetrics| PerfJob {
            name: name.to_string(),
            workload: "campaign".to_string(),
            mode: "mixed".to_string(),
            profiled: false,
            reps: 1,
            metrics: m,
        };
        let doc = BenchDoc {
            schema_version: SCHEMA_VERSION,
            git_rev: git_rev(std::path::Path::new(".")),
            host,
            ncpu,
            scale: format!("{scale}"),
            reps: 1,
            prof_overhead_pct: 0.0,
            jobs: vec![
                // Campaign throughput: simulated cycles completed per
                // wall-second across the whole run (pool + warm starts).
                job(
                    "campaign/throughput",
                    metric("campaign/throughput", wall, total_cycles, total_tasks),
                ),
                // Dedup probe: `cycles_per_sec` is the raw dedup-hit count
                // over a 1 s denominator — a fingerprint or dedup
                // regression zeroes it, which the perf gate flags.
                job(
                    "campaign/dedup_probe",
                    metric("campaign/dedup_probe", 1.0, report.dedup_hits, 0),
                ),
            ],
            spans: raccd_prof::ProfReport::empty(),
        };
        std::fs::write(&p, doc.render()).unwrap_or_else(|e| panic!("writing {p}: {e}"));
        eprintln!("campaign: wrote perf document {p}");
    }

    if !report.reconcile.consistent {
        eprintln!("campaign: reconciliation FAILED: {}", report.to_json());
        std::process::exit(1);
    }
}
