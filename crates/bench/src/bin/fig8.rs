//! Figure 8: "Average occupancy of the directory" — time-weighted average
//! directory occupancy per benchmark under FullCoh, PT and RaCCD at 1:1.
//!
//! Paper reference points: FullCoh 65.7 %, PT 20.3 %, RaCCD 10.8 % on
//! average.

use raccd_bench::chart::{chart_requested, grouped_bar_chart};
use raccd_bench::{bench_names, config_from_args, mean, run_matrix, scale_from_args};
use raccd_core::CoherenceMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = scale_from_args(&args);
    let names = bench_names(scale);

    let modes: Vec<(CoherenceMode, bool)> =
        CoherenceMode::ALL.iter().map(|&m| (m, false)).collect();
    let results = run_matrix(
        "fig8",
        scale,
        config_from_args(scale, &args),
        names.len(),
        &modes,
        &[1],
    );

    println!("# Figure 8: average directory occupancy (%), 1:1 directory");
    println!("benchmark\tFullCoh\tPT\tRaCCD");
    let mut avgs = [Vec::new(), Vec::new(), Vec::new()];
    for trio in results.chunks(3) {
        let vals: Vec<f64> = trio
            .iter()
            .map(|r| 100.0 * r.result.stats.dir_avg_occupancy)
            .collect();
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}",
            trio[0].name, vals[0], vals[1], vals[2]
        );
        for i in 0..3 {
            avgs[i].push(vals[i]);
        }
    }
    println!(
        "Average\t{:.1}\t{:.1}\t{:.1}",
        mean(&avgs[0]),
        mean(&avgs[1]),
        mean(&avgs[2])
    );
    println!("# paper: FullCoh 65.7, PT 20.3, RaCCD 10.8");

    if chart_requested(&args) {
        let groups: Vec<(String, Vec<f64>)> = results
            .chunks(3)
            .map(|trio| {
                (
                    trio[0].name.clone(),
                    trio.iter()
                        .map(|r| 100.0 * r.result.stats.dir_avg_occupancy)
                        .collect(),
                )
            })
            .collect();
        println!();
        print!(
            "{}",
            grouped_bar_chart(
                "Figure 8: average directory occupancy (%)",
                &["FullCoh", "PT", "RaCCD"],
                &groups,
                50
            )
        );
    }
}
