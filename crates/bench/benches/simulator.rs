//! Criterion micro-benchmarks for the simulator's hot paths: the machine
//! access path, the NCRT, the coherence-recovery flush, TDG construction
//! and the replacement logic.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use raccd_cache::TreePlru;
use raccd_core::Ncrt;
use raccd_mem::addr::VRange;
use raccd_mem::{PAddr, VAddr};
use raccd_runtime::{Dep, ProgramBuilder};
use raccd_sim::{L1LookupResult, Machine, MachineConfig, RuntimeCosts};

fn drive_access(m: &mut Machine, core: usize, vaddr: u64, write: bool, nc: bool, now: u64) {
    let (paddr, _) = m.translate(core, VAddr(vaddr));
    let block = paddr.block();
    match m.l1_lookup(core, block, write, now) {
        L1LookupResult::Hit { .. } => {}
        L1LookupResult::Miss => {
            m.miss_fill(core, block, write, nc, now);
        }
    }
}

fn bench_access_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.bench_function("l1_hit", |b| {
        let mut m = Machine::new(MachineConfig::scaled());
        drive_access(&mut m, 0, 0x10_0000, false, false, 0);
        b.iter(|| drive_access(&mut m, 0, black_box(0x10_0000), false, false, 1))
    });
    g.bench_function("coherent_miss_stream", |b| {
        let mut m = Machine::new(MachineConfig::scaled());
        let mut addr = 0x10_0000u64;
        b.iter(|| {
            drive_access(&mut m, 0, black_box(addr), false, false, 1);
            addr += 64;
        })
    });
    g.bench_function("nc_miss_stream", |b| {
        let mut m = Machine::new(MachineConfig::scaled());
        let mut addr = 0x10_0000u64;
        b.iter(|| {
            drive_access(&mut m, 0, black_box(addr), false, true, 1);
            addr += 64;
        })
    });
    g.bench_function("flush_nc_512_lines", |b| {
        let mut m = Machine::new(MachineConfig::scaled());
        b.iter(|| {
            for i in 0..64u64 {
                drive_access(&mut m, 0, 0x10_0000 + i * 64, true, true, 1);
            }
            black_box(m.flush_nc(0, 2))
        })
    });
    g.finish();
}

fn bench_ncrt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ncrt");
    g.bench_function("register_64_pages", |b| {
        let mut m = Machine::new(MachineConfig::scaled());
        let costs = RuntimeCosts::default();
        b.iter(|| {
            let mut n = Ncrt::new(32);
            black_box(n.register_region(
                &mut m,
                0,
                VRange::new(VAddr(0x10_0000), 64 * 4096),
                &costs,
            ))
        })
    });
    g.bench_function("lookup_full_table", |b| {
        let mut n = Ncrt::new(32);
        for i in 0..32u64 {
            n.insert(i * 0x10000, i * 0x10000 + 0x8000);
        }
        b.iter(|| black_box(n.lookup(PAddr(0x1F_4000))))
    });
    g.finish();
}

fn bench_plru(c: &mut Criterion) {
    c.bench_function("plru_touch_victim_8way", |b| {
        let mut p = TreePlru::new();
        let mut i = 0usize;
        b.iter(|| {
            p.touch(i % 8, 8);
            i += 1;
            black_box(p.victim(8))
        })
    });
}

fn bench_tdg(c: &mut Criterion) {
    c.bench_function("tdg_build_1000_chain", |b| {
        b.iter(|| {
            let mut builder = ProgramBuilder::new();
            let buf = builder.alloc("v", 64 * 1024);
            for i in 0..1000u64 {
                let r = VRange::new(buf.start.offset((i % 16) * 4096), 4096);
                builder.task("t", vec![Dep::inout(r)], |_| {});
            }
            black_box(builder.finish().graph.edges())
        })
    });
}

criterion_group!(
    benches,
    bench_access_path,
    bench_ncrt,
    bench_plru,
    bench_tdg
);
criterion_main!(benches);
