//! Task re-execution policy: the runtime side of fault recovery.
//!
//! When a task aborts (an injected failure, or in a real runtime a
//! detected error), RaCCD makes re-execution safe *by construction*:
//! `raccd_invalidate` discards every non-coherent line the attempt cached,
//! and the task's annotated data cannot have been observed by concurrent
//! tasks during its execution window (§II-D). The [`RetryBook`] decides
//! whether a failed task gets another attempt or exhausts its budget —
//! budget exhaustion surfaces as a *detected* outcome, never a silent one.

use crate::graph::TaskId;

/// Verdict for one task failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryDecision {
    /// Re-execute; this is attempt number `.0` (1 = first retry).
    Retry(u32),
    /// The per-task budget is spent: abort the run as detected.
    Exhausted,
}

/// Tracks re-execution attempts per task against a uniform budget.
#[derive(Clone, Debug)]
pub struct RetryBook {
    budget: u32,
    attempts: Vec<u32>,
}

impl RetryBook {
    /// A book for `ntasks` tasks, each allowed `budget` re-executions.
    pub fn new(ntasks: usize, budget: u32) -> Self {
        RetryBook {
            budget,
            attempts: vec![0; ntasks],
        }
    }

    /// Record a failure of `task` and decide its fate.
    pub fn note_failure(&mut self, task: TaskId) -> RetryDecision {
        let a = &mut self.attempts[task];
        *a += 1;
        if *a > self.budget {
            RetryDecision::Exhausted
        } else {
            RetryDecision::Retry(*a)
        }
    }

    /// Attempts recorded for `task` so far.
    pub fn attempts(&self, task: TaskId) -> u32 {
        self.attempts[task]
    }

    /// Total re-executions granted across all tasks.
    pub fn total_retries(&self) -> u64 {
        self.attempts
            .iter()
            .map(|&a| a.min(self.budget) as u64)
            .sum()
    }
}

impl raccd_snap::Snap for RetryBook {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        w.u32(self.budget);
        self.attempts.save(w);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        Ok(RetryBook {
            budget: r.u32()?,
            attempts: Snap::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_budget_then_exhausts() {
        let mut b = RetryBook::new(2, 3);
        assert_eq!(b.note_failure(0), RetryDecision::Retry(1));
        assert_eq!(b.note_failure(0), RetryDecision::Retry(2));
        assert_eq!(b.note_failure(0), RetryDecision::Retry(3));
        assert_eq!(b.note_failure(0), RetryDecision::Exhausted);
        // Exhaustion is per task, not global.
        assert_eq!(b.note_failure(1), RetryDecision::Retry(1));
        assert_eq!(b.attempts(0), 4);
        assert_eq!(b.total_retries(), 4);
    }

    #[test]
    fn zero_budget_never_retries() {
        let mut b = RetryBook::new(1, 0);
        assert_eq!(b.note_failure(0), RetryDecision::Exhausted);
    }
}
