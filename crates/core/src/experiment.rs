//! The top-level experiment API.
//!
//! ```
//! use raccd_core::{CoherenceMode, Experiment};
//! use raccd_sim::MachineConfig;
//! # use raccd_runtime::{Dep, Program, ProgramBuilder, Workload};
//! # use raccd_mem::SimMemory;
//! # struct W;
//! # impl Workload for W {
//! #     fn name(&self) -> &str { "w" }
//! #     fn build(&self) -> Program {
//! #         let mut b = ProgramBuilder::new();
//! #         let v = b.alloc("v", 8);
//! #         b.task("t", vec![Dep::output(v)], move |ctx| ctx.write_u64(v.start, 7));
//! #         b.finish()
//! #     }
//! #     fn verify(&self, mem: &SimMemory) -> Result<(), String> {
//! #         (mem.read_u64(raccd_mem::VAddr(SimMemory::HEAP_BASE)) == 7)
//! #             .then_some(()).ok_or_else(|| "bad".into())
//! #     }
//! # }
//! let run = Experiment::new(MachineConfig::scaled(), CoherenceMode::Raccd).run(&W);
//! assert!(run.verified);
//! assert!(run.stats.cycles > 0);
//! ```

use crate::census::CensusSummary;
use crate::driver::DriverOutput;
use crate::engine::{run_program_engine, run_program_engine_profiled, Engine};
use crate::mode::CoherenceMode;
use raccd_obs::Recorder;
use raccd_prof::ProfReport;
use raccd_runtime::Workload;
use raccd_sim::{MachineConfig, Stats};

/// One simulated execution of a workload on a configured machine.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Machine configuration (Table I preset or variant).
    pub config: MachineConfig,
    /// System under evaluation.
    pub mode: CoherenceMode,
    /// Simulation engine advancing the run (default [`Engine::Serial`]).
    pub engine: Engine,
}

/// Results of an [`Experiment::run`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// All machine counters.
    pub stats: Stats,
    /// Figure 2's block census.
    pub census: CensusSummary,
    /// Whether the workload's functional verification passed.
    pub verified: bool,
    /// Verification failure description, if any.
    pub verify_error: Option<String>,
    /// Tasks executed.
    pub tasks: usize,
    /// TDG edges.
    pub edges: usize,
    /// Self-profiler span table ([`Experiment::run_profiled`] only).
    pub prof: Option<ProfReport>,
}

impl Experiment {
    /// Describe an experiment.
    pub fn new(config: MachineConfig, mode: CoherenceMode) -> Self {
        Experiment {
            config,
            mode,
            engine: Engine::Serial,
        }
    }

    /// Select the simulation engine. Any engine produces bit-identical
    /// results; [`Engine::EpochParallel`] trades coordinator work for
    /// concurrent hit-prefix speculation.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Build the workload's program, simulate it, and verify the output.
    pub fn run(&self, workload: &dyn Workload) -> RunResult {
        self.run_with_recorder(workload, None)
    }

    /// [`Experiment::run`] with optional telemetry: with `Some(recorder)`
    /// the driver streams the unified event model, latency histograms and
    /// interval time-series into it (see [`raccd_obs`]).
    pub fn run_with_recorder(
        &self,
        workload: &dyn Workload,
        rec: Option<&mut Recorder>,
    ) -> RunResult {
        let program = workload.build();
        let out = run_program_engine(self.config, self.mode, program, self.engine, rec);
        Self::finish_run(workload, out)
    }

    /// [`Experiment::run`] with the self-profiler attached: the result's
    /// `prof` holds the span table. The simulated outcome is bit-identical
    /// to an unprofiled run (the profiler reads only host clocks).
    pub fn run_profiled(&self, workload: &dyn Workload) -> RunResult {
        let program = workload.build();
        let out = run_program_engine_profiled(self.config, self.mode, program, self.engine, None);
        Self::finish_run(workload, out)
    }

    fn finish_run(workload: &dyn Workload, out: DriverOutput) -> RunResult {
        let DriverOutput {
            stats,
            census,
            mem,
            tasks,
            edges,
            events: _,
            check: _,
            fault: _,
            audit: _,
            prof,
        } = out;
        let verify = workload.verify(&mem);
        RunResult {
            stats,
            census: census.summary(),
            verified: verify.is_ok(),
            verify_error: verify.err(),
            tasks,
            edges,
            prof,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raccd_mem::SimMemory;
    use raccd_runtime::{Dep, Program, ProgramBuilder};

    struct Summer {
        n: u64,
    }

    impl Workload for Summer {
        fn name(&self) -> &str {
            "summer"
        }
        fn build(&self) -> Program {
            let mut b = ProgramBuilder::new();
            let data = b.alloc("data", self.n * 8);
            let out = b.alloc("out", 8);
            for i in 0..self.n {
                b.mem().write_u64(data.start.offset(i * 8), i + 1);
            }
            let n = self.n;
            b.task(
                "sum",
                vec![Dep::input(data), Dep::output(out)],
                move |ctx| {
                    let mut s = 0;
                    for i in 0..n {
                        s += ctx.read_u64(data.start.offset(i * 8));
                    }
                    ctx.write_u64(out.start, s);
                },
            );
            b.finish()
        }
        fn verify(&self, mem: &SimMemory) -> Result<(), String> {
            let out_addr = mem.allocations()[1].1.start;
            let got = mem.read_u64(out_addr);
            let want = self.n * (self.n + 1) / 2;
            if got == want {
                Ok(())
            } else {
                Err(format!("sum {got} != {want}"))
            }
        }
    }

    #[test]
    fn experiment_runs_and_verifies() {
        for mode in CoherenceMode::ALL {
            let r =
                Experiment::new(raccd_sim::MachineConfig::scaled(), mode).run(&Summer { n: 1000 });
            assert!(r.verified, "{mode}: {:?}", r.verify_error);
            assert_eq!(r.tasks, 1);
            assert!(r.stats.refs_processed >= 1001);
        }
    }

    #[test]
    fn census_summary_exposed() {
        let r = Experiment::new(raccd_sim::MachineConfig::scaled(), CoherenceMode::Raccd)
            .run(&Summer { n: 1000 });
        assert!(r.census.total_blocks > 0);
        assert!(r.census.noncoherent_pct() > 50.0);
    }
}
