//! **RedBlack** — "solves the stationary heat diffusion problem with a
//! 4-element stencil" using red/black ordering (Table II: 2-D matrix
//! N² = 2359296, 10 iterations).
//!
//! Each sweep has two phases: red cells (`(i+j)` even) update from black
//! neighbours, then black cells update from the fresh red values. Row-block
//! tasks within a phase are mutually independent (they only read their
//! halo rows), so each phase is embarrassingly parallel and the result is
//! order-independent — bit-identical to the sequential reference.

use crate::scale::Scale;
use crate::util::GridF32;
use raccd_mem::{SimMemory, SplitMix64};
use raccd_runtime::{Dep, Program, ProgramBuilder, Workload};

/// The red-black Gauss-Seidel benchmark.
pub struct RedBlack {
    /// Grid is `n × n` f32.
    pub n: u64,
    /// Sweeps (each = red phase + black phase).
    pub iters: u64,
    /// Row-block tasks per phase.
    pub blocks: u64,
    /// RNG seed for deterministic input data.
    pub seed: u64,
}

impl RedBlack {
    /// Configure for a scale (Paper: N² = 2359296, 10 iterations).
    pub fn new(scale: Scale) -> Self {
        RedBlack {
            n: scale.pick(48, 384, 1536),
            iters: scale.pick(2, 3, 10),
            blocks: scale.pick(8, 32, 48),
            seed: 0x6EDB,
        }
    }

    fn init_grid(&self) -> Vec<f32> {
        let mut rng = SplitMix64::new(self.seed);
        (0..self.n * self.n).map(|_| rng.next_f32()).collect()
    }

    fn reference(&self) -> Vec<f32> {
        let n = self.n as usize;
        let mut g = self.init_grid();
        for _ in 0..self.iters {
            for colour in 0..2usize {
                for i in 1..n - 1 {
                    for j in 1..n - 1 {
                        if (i + j) % 2 == colour {
                            g[i * n + j] = 0.25
                                * (g[(i - 1) * n + j]
                                    + g[(i + 1) * n + j]
                                    + g[i * n + j - 1]
                                    + g[i * n + j + 1]);
                        }
                    }
                }
            }
        }
        g
    }
}

impl Workload for RedBlack {
    fn name(&self) -> &str {
        "RedBlack"
    }

    fn problem(&self) -> String {
        format!("2D Matrix N2 = {}, {} iters.", self.n * self.n, self.iters)
    }

    fn build(&self) -> Program {
        let n = self.n;
        let mut b = ProgramBuilder::new();
        let range = b.alloc("G", n * n * 4);
        let g = GridF32::new(range, n);
        for (i, v) in self.init_grid().into_iter().enumerate() {
            b.mem().write_f32(g.at(i as u64 / n, i as u64 % n), v);
        }

        for _it in 0..self.iters {
            for colour in 0..2u64 {
                for (r0, r1) in crate::util::chunk_ranges(n, self.blocks) {
                    let mut deps = vec![Dep::inout(g.rows(r0, r1))];
                    if r0 > 0 {
                        deps.push(Dep::input(g.row(r0 - 1)));
                    }
                    if r1 < n {
                        deps.push(Dep::input(g.row(r1)));
                    }
                    b.task("redblack", deps, move |ctx| {
                        for i in r0..r1 {
                            if i == 0 || i == n - 1 {
                                continue;
                            }
                            let start_j = 1 + (1 + i + colour) % 2;
                            let mut j = start_j;
                            while j < n - 1 {
                                let s = 0.25
                                    * (ctx.read_f32(g.at(i - 1, j))
                                        + ctx.read_f32(g.at(i + 1, j))
                                        + ctx.read_f32(g.at(i, j - 1))
                                        + ctx.read_f32(g.at(i, j + 1)));
                                ctx.write_f32(g.at(i, j), s);
                                j += 2;
                            }
                        }
                    });
                }
            }
        }
        b.finish()
    }

    fn verify(&self, mem: &SimMemory) -> Result<(), String> {
        let expect = self.reference();
        let n = self.n;
        let base = mem.allocations()[0].1.start;
        let g = GridF32::new(raccd_mem::addr::VRange::new(base, n * n * 4), n);
        for i in 0..n {
            for j in 0..n {
                let got = mem.read_f32(g.at(i, j));
                let want = expect[(i * n + j) as usize];
                if got != want {
                    return Err(format!("({i},{j}): got {got}, want {want}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_run_matches_reference_bitwise() {
        let w = RedBlack::new(Scale::Test);
        let mut p = w.build();
        p.run_functional();
        w.verify(&p.mem).expect("bitwise match");
    }

    #[test]
    fn colour_indexing_covers_each_parity() {
        // For row i, colour 0 (red = (i+j) even) starts at j with
        // (i+j) % 2 == 0 and steps by 2.
        for i in 1..5u64 {
            for colour in 0..2u64 {
                let start_j = 1 + (1 + i + colour) % 2;
                assert_eq!(
                    (i + start_j) % 2,
                    colour,
                    "row {i} colour {colour} starts at {start_j}"
                );
            }
        }
    }

    #[test]
    fn two_phases_per_iteration() {
        let w = RedBlack::new(Scale::Test);
        let p = w.build();
        assert_eq!(p.graph.len() as u64, 2 * w.blocks * w.iters);
    }

    #[test]
    fn phases_pipeline_through_halo_rows() {
        // Range-granularity dependences make block b+1 wait on block b's
        // halo read (WAR), yielding the pipelined-wavefront TDG typical of
        // row-blocked stencils: exactly the first red task starts ready.
        let w = RedBlack {
            n: 48,
            iters: 1,
            blocks: 6,
            seed: 1,
        };
        let p = w.build();
        assert_eq!(p.graph.initially_ready(), vec![0]);
        assert!(p.graph.edges() >= 2 * w.blocks as usize - 1);
    }
}
