//! Property tests for Adaptive Directory Reduction: under arbitrary
//! allocate/deallocate/resize-check sequences the bank must keep its
//! invariants — capacity within [min, max], occupancy ≤ capacity, no
//! entries lost except through reported evictions.

use proptest::prelude::*;
use raccd_mem::BlockAddr;
use raccd_protocol::{Adr, AdrConfig, DirEntry, DirectoryBank};
use std::collections::HashSet;

#[derive(Clone, Copy, Debug)]
enum Op {
    Alloc(u64),
    Dealloc(u64),
    AdrCheck,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..512).prop_map(Op::Alloc),
        2 => (0u64..512).prop_map(Op::Dealloc),
        1 => Just(Op::AdrCheck),
    ]
}

proptest! {
    #[test]
    fn adr_invariants_under_random_ops(
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let max_entries = 256;
        let mut bank = DirectoryBank::new(max_entries, 8, 0);
        let mut adr = Adr::new(AdrConfig::paper_defaults(max_entries, 8));
        // Ground truth: blocks believed resident.
        let mut resident: HashSet<u64> = HashSet::new();

        for (i, &op) in ops.iter().enumerate() {
            let now = i as u64 * 10;
            match op {
                Op::Alloc(b) => {
                    if resident.contains(&b) {
                        continue;
                    }
                    if let Some(ev) = bank.allocate(BlockAddr(b), now, DirEntry::uncached()) {
                        prop_assert!(resident.remove(&ev.block.0), "evicted unknown block");
                    }
                    resident.insert(b);
                }
                Op::Dealloc(b) => {
                    let was = bank.deallocate(BlockAddr(b), now).is_some();
                    prop_assert_eq!(was, resident.remove(&b));
                }
                Op::AdrCheck => {
                    if let Some(ev) = adr.maybe_resize(&mut bank, now) {
                        for victim in &ev.evicted {
                            prop_assert!(resident.remove(&victim.block.0));
                        }
                        prop_assert!(ev.new_entries.is_power_of_two());
                    }
                }
            }
            // Invariants after every operation.
            prop_assert!(bank.capacity() >= 8, "never below one set");
            prop_assert!(bank.capacity() <= max_entries, "never above design size");
            prop_assert_eq!(bank.occupancy(), resident.len());
            // Every believed-resident block is findable.
            for &b in resident.iter().take(8) {
                prop_assert!(bank.probe(BlockAddr(b)).is_some());
            }
        }
    }

    /// The occupancy fraction after ADR settles is always within the
    /// hysteresis band (or the size limits bind).
    #[test]
    fn adr_settles_inside_hysteresis_band(nblocks in 0u64..200) {
        let max_entries = 256;
        let mut bank = DirectoryBank::new(max_entries, 8, 0);
        let mut adr = Adr::new(AdrConfig::paper_defaults(max_entries, 8));
        for b in 0..nblocks {
            if let Some(_ev) = bank.allocate(BlockAddr(b), b, DirEntry::uncached()) {}
        }
        let mut now = nblocks;
        while adr.maybe_resize(&mut bank, now).is_some() {
            now += 10;
        }
        let frac = bank.occupancy() as f64 / bank.capacity() as f64;
        let at_min = bank.capacity() == 8;
        let at_max = bank.capacity() == max_entries;
        prop_assert!(
            at_min || at_max || (frac > 0.20 && frac < 0.80),
            "settled outside band: occ {} / cap {}",
            bank.occupancy(),
            bank.capacity()
        );
    }
}
