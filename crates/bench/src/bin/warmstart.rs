//! Warm-start fault-seed sweep: pay each benchmark's warm-up phase once,
//! checkpoint, then fan the seed sweep out over host threads — every seed
//! forks from the shared post-warmup snapshot instead of re-simulating the
//! warm-up.
//!
//! ```text
//! cargo run --release -p raccd-bench --bin warmstart -- \
//!     [--scale test|bench] [--bench Jacobi,...] [--mode RaCCD] \
//!     [--warmup 20000] [--seeds 8] [--spec "drop=2e-4,..."] [--cold] \
//!     [--engine serial|parallel [--threads N]]
//! ```
//!
//! Each seed's run is *identical* to a cold run that simulates the warm-up
//! phase itself and reseeds the fault plane at the same cycle boundary —
//! `--cold` runs that serial baseline too, asserts every per-seed result
//! matches exactly (cycles, fault counters, detection), and reports the
//! wall-clock for both paths.

use raccd_bench::{bench_names, config_for_scale, engine_from_args, scale_from_args, tsv_row};
use raccd_campaign::{PoolTask, WorkerPool};
use raccd_core::{CoherenceMode, Driver, DriverOutput, Engine};
use raccd_fault::FaultPlan;
use raccd_runtime::Program;
use raccd_workloads::all_benchmarks;

/// Sweep outcome for one (benchmark, seed) cell.
struct Cell {
    cycles: u64,
    tasks: usize,
    injected: u64,
    retries: u64,
    detected: String,
}

fn cell(out: &DriverOutput) -> Cell {
    let fault = out.fault.as_ref().expect("fault plane was attached");
    Cell {
        cycles: out.stats.cycles,
        tasks: out.tasks,
        injected: fault.stats.injected,
        retries: out.stats.msg_retries,
        detected: fault
            .detected
            .map(|d| format!("{d:?}"))
            .unwrap_or_else(|| "-".to_string()),
    }
}

/// Finish a warmed driver under `seed`: reseed the fault plane at the
/// warm-up boundary, then run to the end. Both the warm path (restored
/// driver) and the cold path (freshly simulated warm-up) go through this,
/// which is what makes them comparable run-for-run.
fn finish_seeded(mut driver: Driver, seed: u64, engine: Engine) -> DriverOutput {
    driver.reseed_faults(seed);
    driver.finish_engine(engine, None)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = scale_from_args(&args);
    let names = bench_names(scale);
    let pick = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let bench_sel: Vec<usize> = pick("--bench")
        .map(|sel| {
            sel.split(',')
                .map(|n| {
                    names
                        .iter()
                        .position(|b| b.eq_ignore_ascii_case(n))
                        .unwrap_or_else(|| panic!("unknown benchmark {n}; have {names:?}"))
                })
                .collect()
        })
        .unwrap_or_else(|| (0..names.len()).collect());
    let mode = match pick("--mode").as_deref().map(str::to_ascii_lowercase) {
        Some(ref m) if m == "fullcoh" => CoherenceMode::FullCoh,
        Some(ref m) if m == "pt" => CoherenceMode::PageTable,
        _ => CoherenceMode::Raccd,
    };
    let warmup: u64 = pick("--warmup")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let nseeds: u64 = pick("--seeds").and_then(|v| v.parse().ok()).unwrap_or(8);
    let cold = args.iter().any(|a| a == "--cold");
    let plan = match pick("--spec") {
        Some(spec) => FaultPlan::from_spec(&spec).unwrap_or_else(|e| panic!("--spec: {e}")),
        None => FaultPlan {
            drop: 2e-4,
            dup: 1e-4,
            delay: 5e-4,
            task_fail: 2e-4,
            ..FaultPlan::default()
        },
    };
    let cfg = config_for_scale(scale);
    let engine = engine_from_args(&args);

    println!("benchmark\tseed\tcycles\ttasks\tinjected\tmsg_retries\tdetected");
    let mut warm_secs = 0.0f64;
    let mut cold_secs = 0.0f64;
    // Snapshot-codec throughput across the sweep (`snap/encode` from each
    // shared checkpoint, `snap/decode` from one probe restore per bench).
    let mut codec = raccd_prof::ProfReport::empty();
    // One pool for the whole sweep, as wide as the host.
    let width = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pool = WorkerPool::new(width, nseeds.max(1) as usize);
    for &b in &bench_sel {
        let make_program = || -> Program { all_benchmarks(scale)[b].build() };

        // Warm path: one warm-up simulation, one shared checkpoint, then a
        // thread-scope fan-out where every seed restores from it.
        let t0 = std::time::Instant::now();
        let mut warm = Driver::new(cfg, mode, make_program(), Some(plan), None);
        warm.run_until(warmup, None);
        // Attached only now, so the span table holds just the encode (and
        // the simulated outcome is bit-identical either way).
        warm.attach_prof();
        let snap = warm.snapshot();
        if let Some(p) = warm.prof() {
            codec.merge(&p.report());
        }
        {
            let mut probe = Driver::restore(cfg, mode, make_program(), &snap)
                .expect("restoring shared warm-up checkpoint");
            probe.attach_prof();
            if let Some(p) = probe.prof() {
                codec.merge(&p.report());
            }
        }
        // Fan the seed sweep out over the campaign worker pool: its width
        // bounds in-flight simulations to the host (each seed owns a full
        // Machine — oversubscribing interleaves their working sets through
        // one cache hierarchy), and a seed that fails surfaces with its
        // (benchmark, seed) label instead of poisoning the batch.
        let snap = std::sync::Arc::new(snap);
        let slots: std::sync::Arc<Vec<std::sync::Mutex<Option<Cell>>>> =
            std::sync::Arc::new((0..nseeds).map(|_| std::sync::Mutex::new(None)).collect());
        let tasks: Vec<PoolTask> = (0..nseeds)
            .map(|i| {
                let seed = i + 1;
                let snap = std::sync::Arc::clone(&snap);
                let slots = std::sync::Arc::clone(&slots);
                PoolTask {
                    label: format!("{} seed {}", names[b], seed),
                    run: Box::new(move |_| {
                        let driver =
                            Driver::restore(cfg, mode, all_benchmarks(scale)[b].build(), &snap)
                                .expect("restoring shared warm-up checkpoint");
                        *slots[i as usize].lock().unwrap() =
                            Some(cell(&finish_seeded(driver, seed, engine)));
                    }),
                }
            })
            .collect();
        if let Some((label, msg)) = pool.run_batch(tasks).into_iter().next() {
            panic!("warm sweep job failed: {label}: {msg}");
        }
        let results: Vec<Cell> = slots
            .iter()
            .map(|s| s.lock().unwrap().take().unwrap())
            .collect();
        warm_secs += t0.elapsed().as_secs_f64();

        for (i, c) in results.iter().enumerate() {
            println!(
                "{}",
                tsv_row(&[
                    names[b].clone(),
                    format!("{}", i + 1),
                    format!("{}", c.cycles),
                    format!("{}", c.tasks),
                    format!("{}", c.injected),
                    format!("{}", c.retries),
                    c.detected.clone(),
                ])
            );
        }

        if cold {
            // Cold baseline: every seed re-simulates the warm-up itself.
            let t0 = std::time::Instant::now();
            for (i, warm_cell) in results.iter().enumerate() {
                let mut driver = Driver::new(cfg, mode, make_program(), Some(plan), None);
                driver.run_until(warmup, None);
                // The cold baseline always finishes serially, so `--cold
                // --engine parallel` doubles as a differential check.
                let c = cell(&finish_seeded(driver, i as u64 + 1, Engine::Serial));
                assert_eq!(c.cycles, warm_cell.cycles, "{} seed {}", names[b], i + 1);
                assert_eq!(
                    c.injected,
                    warm_cell.injected,
                    "{} seed {}",
                    names[b],
                    i + 1
                );
                assert_eq!(c.retries, warm_cell.retries, "{} seed {}", names[b], i + 1);
                assert_eq!(
                    c.detected,
                    warm_cell.detected,
                    "{} seed {}",
                    names[b],
                    i + 1
                );
            }
            cold_secs += t0.elapsed().as_secs_f64();
        }
    }
    eprintln!("warm-start sweep: {warm_secs:.2}s");
    let (enc, dec) = (
        codec.get(raccd_prof::Site::SnapEncode),
        codec.get(raccd_prof::Site::SnapDecode),
    );
    if let (Some(e), Some(d)) = (enc.units_per_sec(), dec.units_per_sec()) {
        eprintln!(
            "snapshot codec:   encode {}B/s decode {}B/s ({} checkpoints, {} payload bytes)",
            raccd_prof::fmt_si(e),
            raccd_prof::fmt_si(d),
            enc.count,
            enc.units
        );
    }
    if cold {
        eprintln!(
            "cold baseline:    {cold_secs:.2}s (warm start {:.1}x faster, results identical)",
            cold_secs / warm_secs.max(1e-9)
        );
    }
}
