//! Campaign-versus-oracle differential: every digest a campaign caches
//! must be bit-identical (`Stats` digest + shadow state key) to a cold
//! serial run of the same `(spec, seed)` — across coherence modes, warm
//! starts from the shared snapshot pool, the parallel engine, and a
//! crash/resume in the middle of the campaign.

use raccd_campaign::{execute_job_direct, Campaign, CampaignConfig, JobDigest, JobKey, JobSpec};
use raccd_core::{CoherenceMode, Engine};
use raccd_fault::Backoff;
use raccd_workloads::Scale;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("raccd-campdiff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn config() -> CampaignConfig {
    CampaignConfig {
        workers: 2,
        queue_cap: 256,
        retry_budget: 1,
        backoff: Backoff { base: 1, cap: 2 },
        timeout_ms: 0,
        slice: 10_000,
    }
}

/// A spread of specs covering the paths that could plausibly diverge:
/// all three coherence modes, a warm-started batch (snapshot-pool restore
/// versus the oracle's cold warm-up), the parallel engine, and a live
/// fault plane.
fn matrix() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for mode in [
        CoherenceMode::FullCoh,
        CoherenceMode::PageTable,
        CoherenceMode::Raccd,
    ] {
        let mut s = JobSpec::new("Jacobi", Scale::Test, mode);
        s.seed_hi = 2;
        specs.push(s);
    }
    let mut warm = JobSpec::new("Gauss", Scale::Test, CoherenceMode::Raccd);
    warm.warmup = 2_000;
    warm.seed_hi = 3;
    specs.push(warm);
    let mut par = JobSpec::new("Histo", Scale::Test, CoherenceMode::Raccd);
    par.engine = Engine::EpochParallel { threads: 2 };
    par.seed_hi = 2;
    specs.push(par);
    let mut faulty = JobSpec::new("Jacobi", Scale::Test, CoherenceMode::Raccd);
    faulty.fault = Some("delay=5e-4:16;dup=1e-4".to_string());
    faulty.seed_hi = 2;
    specs.push(faulty);
    specs
}

fn oracle(specs: &[JobSpec]) -> BTreeMap<JobKey, JobDigest> {
    let mut out = BTreeMap::new();
    for spec in specs {
        for key in spec.keys() {
            let digest = execute_job_direct(spec, key.seed)
                .unwrap_or_else(|e| panic!("oracle {}: {e}", key.label()));
            out.insert(key, digest);
        }
    }
    out
}

fn assert_matches_oracle(results: &[(JobKey, JobDigest)], expect: &BTreeMap<JobKey, JobDigest>) {
    assert_eq!(results.len(), expect.len(), "result-set size differs");
    for (key, digest) in results {
        let want = &expect[key];
        assert_eq!(
            digest,
            want,
            "campaign digest diverged from serial oracle for {}",
            key.label()
        );
    }
}

#[test]
fn campaign_results_match_the_serial_oracle() {
    let specs = matrix();
    let expect = oracle(&specs);
    let camp = Campaign::open(&scratch("diff.jsonl"), config()).unwrap();
    for s in &specs {
        camp.submit(s).unwrap();
    }
    let report = camp.run().unwrap();
    assert_eq!(report.failed, 0, "failures: {:?}", camp.failures());
    assert!(report.reconcile.consistent, "{}", report.to_json());
    assert!(
        report.snap.misses >= 1,
        "warm-started batch never touched the snapshot pool"
    );
    assert_matches_oracle(&camp.results(), &expect);
}

#[test]
fn crash_resume_campaign_is_bit_identical_to_uninterrupted() {
    let specs = matrix();
    let expect = oracle(&specs);
    let total = expect.len() as u64;

    // Interrupted run: cancel mid-flight (crash-shaped — dangling leases,
    // no terminal records), reopen the survivor ledger, finish.
    let path = scratch("crash.jsonl");
    let cfg = CampaignConfig {
        workers: 1,
        ..config()
    };
    let first = {
        let camp = Campaign::open(&path, cfg.clone()).unwrap();
        for s in &specs {
            camp.submit(s).unwrap();
        }
        std::thread::scope(|scope| {
            let runner = scope.spawn(|| camp.run().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(30));
            camp.cancel();
            runner.join().unwrap()
        })
    };
    assert_eq!(first.reconcile.duplicate_completions, 0);

    let camp = Campaign::open(&path, cfg).unwrap();
    // The resubmission a restarted driver would perform: pure dedup.
    for s in &specs {
        assert_eq!(camp.submit(s).unwrap().admitted, 0);
    }
    let second = camp.run().unwrap();
    assert_eq!(second.done, total);
    // A lease in flight at the cancel burns an execution without a result
    // (exactly like a crash); beyond that, the resume runs precisely the
    // jobs the first run didn't complete.
    assert_eq!(
        second.executions,
        total - first.done,
        "crash/resume duplicated a completed job or dropped a pending one"
    );
    assert!(second.reconcile.consistent, "{}", second.to_json());
    assert_matches_oracle(&camp.results(), &expect);
}
