//! Per-benchmark characterisation tests mirroring the paper's per-app
//! analysis in §II-D and §V: each benchmark's memory behaviour must show
//! the trait the paper attributes to it.

use raccd::core::{CoherenceMode, Experiment, RunResult};
use raccd::sim::MachineConfig;
use raccd::workloads::*;
use raccd_runtime::Workload;

fn run(w: &dyn Workload, mode: CoherenceMode) -> RunResult {
    let r = Experiment::new(MachineConfig::scaled(), mode).run(w);
    assert!(r.verified, "{}: {:?}", w.name(), r.verify_error);
    r
}

#[test]
fn md5_is_streaming_with_low_reuse() {
    // §II-D: "streaming read behaviour with low data reuse"; §V-A3: LLC
    // accesses dominated by compulsory misses.
    let r = run(&md5::Md5Bench::new(Scale::Test), CoherenceMode::FullCoh);
    assert!(
        r.stats.llc_hit_ratio() < 0.2,
        "MD5 LLC hit ratio {:.3} should be compulsory-miss-bound",
        r.stats.llc_hit_ratio()
    );
}

#[test]
fn knn_has_small_hot_working_set() {
    // §V-A4: "KNN has a small working set size" — high LLC hit rate and
    // tiny directory occupancy.
    let r = run(&knn::Knn::new(Scale::Test), CoherenceMode::FullCoh);
    assert!(
        r.stats.llc_hit_ratio() > 0.5,
        "{:.3}",
        r.stats.llc_hit_ratio()
    );
    assert!(
        r.stats.dir_avg_occupancy < 0.2,
        "{:.3}",
        r.stats.dir_avg_occupancy
    );
}

#[test]
fn jpeg_annotationless_tasks_defeat_raccd_only() {
    // §II-D: JPEG is RaCCD's worst case but not PT's.
    let w = jpeg::Jpeg::new(Scale::Test);
    let raccd = run(&w, CoherenceMode::Raccd);
    let full = run(&w, CoherenceMode::FullCoh);
    // With nothing registered, RaCCD's directory behaviour equals FullCoh.
    assert_eq!(raccd.stats.nc_fills, 0);
    let ratio = raccd.stats.dir_accesses as f64 / full.stats.dir_accesses as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "JPEG RaCCD ≈ FullCoh dir accesses, got {ratio:.2}"
    );
}

#[test]
fn stencils_have_high_reuse() {
    // Gauss/Jacobi/RedBlack reuse rows heavily: L1 hit rates near 1.
    for w in [
        Box::new(gauss::Gauss::new(Scale::Test)) as Box<dyn Workload>,
        Box::new(jacobi::Jacobi::new(Scale::Test)),
        Box::new(redblack::RedBlack::new(Scale::Test)),
    ] {
        let r = run(w.as_ref(), CoherenceMode::FullCoh);
        assert!(
            r.stats.l1_hit_ratio() > 0.85,
            "{} L1 hit ratio {:.3}",
            w.name(),
            r.stats.l1_hit_ratio()
        );
    }
}

#[test]
fn kmeans_rereads_centroids_every_iteration() {
    // The shared-read centroid broadcast shows as coherent traffic under
    // RaCCD? No — centroids are annotated inputs, so they are NC; but the
    // RaCCD flush forces re-fetching them every task: more NC fills than
    // tasks × centroid blocks would need without flushing.
    let w = kmeans::Kmeans::new(Scale::Test);
    let raccd = run(&w, CoherenceMode::Raccd);
    let full = run(&w, CoherenceMode::FullCoh);
    assert!(
        raccd.stats.l1_misses > full.stats.l1_misses,
        "flushes must cost L1 reuse: {} vs {}",
        raccd.stats.l1_misses,
        full.stats.l1_misses
    );
}

#[test]
fn histo_cross_weave_shares_every_image_page() {
    // The vertical weave re-reads the whole image from different cores, so
    // PT classifies virtually all image pages shared.
    let w = histo::Histo::new(Scale::Test);
    let pt = run(&w, CoherenceMode::PageTable);
    assert!(
        pt.stats.pt_shared_transitions > 0,
        "cross-weave must trigger private→shared transitions"
    );
}

#[test]
fn cg_scalar_reductions_serialise_but_verify() {
    // CG's dot-product scalars create serialising tasks; utilisation is
    // well below the embarrassingly parallel benchmarks'.
    let cgr = run(&cg::Cg::new(Scale::Test), CoherenceMode::FullCoh);
    let md5r = run(&md5::Md5Bench::new(Scale::Test), CoherenceMode::FullCoh);
    assert!(
        cgr.stats.utilization() < md5r.stats.utilization(),
        "CG {:.3} vs MD5 {:.3}",
        cgr.stats.utilization(),
        md5r.stats.utilization()
    );
}

#[test]
fn every_benchmark_reports_consistent_counters() {
    for w in all_benchmarks(Scale::Test) {
        let r = run(w.as_ref(), CoherenceMode::Raccd);
        let s = &r.stats;
        assert_eq!(
            s.l1_hits + s.l1_misses,
            s.refs_processed,
            "{}: every ref makes exactly one L1 attempt",
            w.name()
        );
        assert!(s.nc_fills + s.coherent_fills <= s.l1_misses, "{}", w.name());
        assert!(s.busy_cycles <= s.cycles * s.contexts, "{}", w.name());
        assert!(
            s.tlb_hits + s.tlb_misses >= s.refs_processed,
            "{}",
            w.name()
        );
    }
}
