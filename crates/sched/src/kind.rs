//! The scheduling-policy registry: which policy a machine runs.

use std::fmt;

/// Which scheduling policy a machine runs. Selects a
/// [`Scheduler`](crate::Scheduler) implementation via [`crate::build`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchedKind {
    /// One central FIFO ready queue shared by every context.
    #[default]
    Fifo,
    /// Per-context deques with NUMA-aware stealing (owner LIFO, thief
    /// FIFO, same-socket victims preferred).
    Steal,
    /// Central queue drained by critical-path depth, ties broken by
    /// lowest `TaskId`.
    Priority,
    /// Waker-local FIFO queues: own context, then socket, then global.
    Locality,
    /// Central FIFO with deterministic cycle-quantum preemption and an
    /// append-only audit log.
    Quantum,
}

impl SchedKind {
    /// Every policy, in registry order.
    pub const ALL: [SchedKind; 5] = [
        SchedKind::Fifo,
        SchedKind::Steal,
        SchedKind::Priority,
        SchedKind::Locality,
        SchedKind::Quantum,
    ];

    /// Canonical lower-case label (round-trips through
    /// [`SchedKind::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            SchedKind::Fifo => "fifo",
            SchedKind::Steal => "steal",
            SchedKind::Priority => "priority",
            SchedKind::Locality => "locality",
            SchedKind::Quantum => "quantum",
        }
    }

    /// Parse a policy label (case-insensitive).
    pub fn parse(s: &str) -> Option<SchedKind> {
        match s.to_ascii_lowercase().as_str() {
            "fifo" => Some(SchedKind::Fifo),
            "steal" => Some(SchedKind::Steal),
            "priority" => Some(SchedKind::Priority),
            "locality" => Some(SchedKind::Locality),
            "quantum" => Some(SchedKind::Quantum),
            _ => None,
        }
    }
}

impl fmt::Display for SchedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl raccd_snap::Snap for SchedKind {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        w.u8(match self {
            SchedKind::Fifo => 0,
            SchedKind::Steal => 1,
            SchedKind::Priority => 2,
            SchedKind::Locality => 3,
            SchedKind::Quantum => 4,
        });
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        match r.u8()? {
            0 => Ok(SchedKind::Fifo),
            1 => Ok(SchedKind::Steal),
            2 => Ok(SchedKind::Priority),
            3 => Ok(SchedKind::Locality),
            4 => Ok(SchedKind::Quantum),
            _ => Err(raccd_snap::SnapError::Invalid("sched kind tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for kind in SchedKind::ALL {
            assert_eq!(SchedKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(SchedKind::parse("FIFO"), Some(SchedKind::Fifo));
        assert_eq!(SchedKind::parse("Locality"), Some(SchedKind::Locality));
        assert_eq!(SchedKind::parse("lifo"), None);
    }

    #[test]
    fn snap_roundtrip_is_byte_stable() {
        use raccd_snap::{Snap, SnapReader, SnapWriter};
        for (kind, tag) in [
            (SchedKind::Fifo, 0u8),
            (SchedKind::Steal, 1),
            (SchedKind::Priority, 2),
            (SchedKind::Locality, 3),
            (SchedKind::Quantum, 4),
        ] {
            let mut w = SnapWriter::new();
            kind.save(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(bytes, vec![tag], "{kind} must encode as its tag byte");
            let mut r = SnapReader::new(&bytes);
            assert_eq!(SchedKind::load(&mut r).unwrap(), kind);
        }
    }
}
