//! The simulation driver: Figure 3's runtime phases over the machine.
//!
//! Each simulated core cycles through the three phases of a task-parallel
//! runtime — **scheduling**, **task execution**, **wake-up** — plus RaCCD's
//! two additions: **deactivate coherence** (`raccd_register` per dependence,
//! before execution) and **invalidate non-coherent data**
//! (`raccd_invalidate`, after execution).
//!
//! Cores are interleaved by a time-ordered heap: the core with the smallest
//! local clock processes the next batch of its task's memory references, so
//! cache, directory and NoC state evolve under true multicore contention
//! while remaining fully deterministic.
//!
//! Task bodies run *functionally at dispatch* (recording their reference
//! trace): the programming model guarantees a task's annotated data is
//! race-free during its execution window (§II-D), so values cannot depend
//! on the interleaving being simulated.

use crate::census::Census;
use crate::mode::CoherenceMode;
use crate::ncrt::Ncrt;
use crate::pt::{PageClassifier, PtDecision};
use crate::resilience::{DegradeController, DetectReason, FaultReport};
use crate::tlbclass::TlbClassifier;
use raccd_mem::{SimMemory, VAddr};
use raccd_obs::{Event, Gauges, Recorder};
use raccd_prof::{Prof, ProfReport, Site};
use raccd_runtime::{MemRef, Program, RetryBook, RetryDecision, TaskCtx, TaskGraph};
use raccd_sched::{PreemptRecord, SchedKind, SchedParams, Scheduler};
use raccd_sim::{
    CheckEvent, CheckReport, CoherenceEvent, FaultPlan, FaultPlane, L1LookupResult, Machine,
    MachineConfig, Stats, TimedEvent, Watchdog,
};
use raccd_snap::{SnapError, Snapshot};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// References processed per core turn before re-entering the heap.
/// Small enough to interleave finely, large enough to amortise heap cost.
pub(crate) const BATCH: usize = 64;

/// Deterministic scheduling jitter (cycles), modelling the wake-up/IPI
/// latency variation of a real runtime. Without it the simulator's
/// perfectly symmetric timing re-assigns every chunk to the same core each
/// iteration, hiding the task-migration behaviour of dynamic schedulers
/// that the paper's PT-vs-RaCCD comparison depends on (§II-B).
fn sched_jitter(core: usize, salt: u64) -> u64 {
    let mut h =
        raccd_mem::SplitMix64::new((core as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt);
    h.next_below(48)
}

pub(crate) struct Running {
    tid: raccd_runtime::TaskId,
    pub(crate) trace: Vec<MemRef>,
    pub(crate) pos: usize,
    /// Fault plane: the trace index at which this attempt aborts, if any.
    pub(crate) fail_at: Option<usize>,
}

/// Scheduler construction inputs derived from the machine shape and the
/// task graph. Everything here is recomputable, so restore rebuilds it
/// instead of reading it from the snapshot: critical-path priorities are
/// computed only when the `priority` policy will consume them (and must
/// be computed *before* graph replay consumes the dependent lists).
fn sched_params(cfg: &MachineConfig, graph: &TaskGraph) -> SchedParams {
    let nctx = cfg.ncontexts();
    let tiles_per_socket = cfg.mesh_k * cfg.mesh_k;
    let ctx_socket = (0..nctx)
        .map(|ctx| (ctx / cfg.smt_ways) / tiles_per_socket)
        .collect();
    let priorities = if cfg.sched == SchedKind::Priority {
        raccd_sched::critical_path_priorities(graph.len(), |id| graph.dependents(id))
    } else {
        Vec::new()
    };
    SchedParams {
        nctx,
        ctx_socket,
        priorities,
        quantum: cfg.sched_quantum,
    }
}

/// Everything a timed run produces.
pub struct DriverOutput {
    /// Machine statistics.
    pub stats: Stats,
    /// Protocol events, time-stamped (non-empty only with
    /// `cfg.record_events` and no recorder attached: with telemetry active
    /// they are delivered to the [`Recorder`] as [`Event::Coherence`]
    /// instead).
    pub events: Vec<TimedEvent>,
    /// The Figure 2 block census.
    pub census: Census,
    /// Final memory image (for functional verification).
    pub mem: SimMemory,
    /// Tasks executed.
    pub tasks: usize,
    /// TDG edges.
    pub edges: usize,
    /// Shadow-checker report, when a checker was attached to the machine
    /// (`cfg.shadow_check`, `RACCD_SHADOW_CHECK=1`, or a harness-installed
    /// sink). `None` when no checker ran.
    pub check: Option<CheckReport>,
    /// Fault-plane outcome, when a plane was attached
    /// ([`run_program_faulty`] or `RACCD_FAULT_SPEC`). `None` otherwise.
    pub fault: Option<FaultReport>,
    /// Self-profiler span table, when a profiler was attached
    /// ([`run_program_profiled`] or [`Driver::attach_prof`]). `None`
    /// otherwise. Host wall-time attribution only — never affects the
    /// simulated outcome.
    pub prof: Option<ProfReport>,
    /// The scheduler's append-only quantum-preemption audit log (empty
    /// for every policy but `quantum`). Deterministic: identical runs
    /// produce identical logs, serial or epoch-parallel.
    pub audit: Vec<PreemptRecord>,
}

/// Run a program to completion on a machine configured per `cfg` under the
/// given coherence mode.
pub fn run_program(cfg: MachineConfig, mode: CoherenceMode, program: Program) -> DriverOutput {
    run_program_with(cfg, mode, program, None)
}

/// [`run_program`] with optional telemetry. With `Some(recorder)` the
/// driver emits the full task-lifecycle and RaCCD-mechanism event stream,
/// feeds the latency histograms, samples the interval time-series on the
/// global heap clock, and drains the machine's protocol events into the
/// recorder. With `None` every hook is a single branch on a niche pointer,
/// keeping the disabled path within the telemetry overhead budget.
pub fn run_program_with(
    cfg: MachineConfig,
    mode: CoherenceMode,
    program: Program,
    mut rec: Option<&mut Recorder>,
) -> DriverOutput {
    Driver::new(cfg, mode, program, None, rec.as_deref_mut()).finish(rec)
}

/// [`run_program_with`] plus the self-profiler: the returned
/// `output.prof` attributes host wall-time to the fixed site registry
/// (cache lookups, directory accesses, NoC transmits, TLB walks, runtime
/// scheduling, snapshot codecs). The profiler reads only host clocks —
/// never simulated state — so the simulated outcome (Stats, memory image,
/// `state_key`) is bit-identical to an unprofiled run; the differential
/// suite asserts this.
pub fn run_program_profiled(
    cfg: MachineConfig,
    mode: CoherenceMode,
    program: Program,
    mut rec: Option<&mut Recorder>,
) -> DriverOutput {
    let mut driver = Driver::new(cfg, mode, program, None, rec.as_deref_mut());
    driver.attach_prof();
    driver.finish(rec)
}

/// [`run_program_with`] plus a fault plane built from `plan`. The run
/// either completes with every injected fault recovered
/// (`fault.detected == None`) or is aborted as *detected* — by the
/// progress watchdog, a message retry budget, or a task retry budget —
/// never silently wrong. Sustained NCRT/retry pressure may downgrade
/// RaCCD to full coherence mid-run (`fault.degraded`).
pub fn run_program_faulty(
    cfg: MachineConfig,
    mode: CoherenceMode,
    program: Program,
    plan: FaultPlan,
    mut rec: Option<&mut Recorder>,
) -> DriverOutput {
    Driver::new(cfg, mode, program, Some(plan), rec.as_deref_mut()).finish(rec)
}

/// Rollback-recovery knobs for [`run_program_resilient`].
#[derive(Clone, Copy, Debug)]
pub struct RollbackPolicy {
    /// Cycles between automatic checkpoints.
    pub checkpoint_interval: u64,
    /// Detections absorbed by rolling back to the last good checkpoint
    /// before the run gives up and surfaces the detection.
    pub max_rollbacks: u32,
}

impl Default for RollbackPolicy {
    fn default() -> Self {
        RollbackPolicy {
            checkpoint_interval: 100_000,
            max_rollbacks: 3,
        }
    }
}

/// [`run_program_faulty`] with checkpoint-rollback recovery: the driver
/// auto-checkpoints every `policy.checkpoint_interval` cycles and, when a
/// fault is *detected* (watchdog, message or task retry budget), restores
/// the last good checkpoint and resumes instead of aborting — up to
/// `policy.max_rollbacks` times. Each rollback reseeds the fault plane
/// (salted by the rollback count) so the replayed interval does not roll
/// the identical faults and livelock. `make_program` rebuilds the program
/// for each restore; it must be deterministic (every workload builder is).
pub fn run_program_resilient(
    cfg: MachineConfig,
    mode: CoherenceMode,
    make_program: &dyn Fn() -> Program,
    plan: FaultPlan,
    policy: RollbackPolicy,
    mut rec: Option<&mut Recorder>,
) -> DriverOutput {
    let mut driver = Driver::new(cfg, mode, make_program(), Some(plan), rec.as_deref_mut());
    driver.set_checkpoint_interval(policy.checkpoint_interval);
    let mut last_good: Option<Snapshot> = None;
    let mut rollbacks = 0u32;
    loop {
        while driver.step(rec.as_deref_mut()) {}
        if let Some(ck) = driver.take_last_checkpoint() {
            last_good = Some(ck);
        }
        if driver.detection().is_none() || rollbacks >= policy.max_rollbacks {
            break;
        }
        let Some(snap) = last_good.as_ref() else {
            break;
        };
        let Ok(mut restored) = Driver::restore(cfg, mode, make_program(), snap) else {
            break;
        };
        rollbacks += 1;
        restored.set_checkpoint_interval(policy.checkpoint_interval);
        restored.reseed_faults(rollbacks as u64);
        restored.rollbacks = rollbacks;
        driver = restored;
    }
    driver.into_output(rec)
}

impl raccd_snap::Snap for Running {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        self.tid.save(w);
        self.trace.save(w);
        self.pos.save(w);
        self.fail_at.save(w);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        let run = Running {
            tid: Snap::load(r)?,
            trace: Snap::load(r)?,
            pos: Snap::load(r)?,
            fail_at: Snap::load(r)?,
        };
        if run.pos > run.trace.len() {
            return Err(raccd_snap::SnapError::Invalid("trace position"));
        }
        Ok(run)
    }
}

/// The main simulation loop reified as a resumable struct.
///
/// `Driver::new` + repeated [`Driver::step`] + [`Driver::finish`] is
/// exactly one [`run_program`] call; [`Driver::run_until`] stops at a
/// cycle boundary, and [`Driver::snapshot`] / [`Driver::restore`] capture
/// and revive the *entire* run — machine (caches, directory, NCRT/ADR
/// state, page table, TLBs, memory, fault plane, shadow checker) plus the
/// runtime (TDG progress, ready queues, in-flight task traces, per-context
/// clocks, the event heap) — so a restored run finishes bit-identical to
/// an uninterrupted one. The task graph itself is never serialized:
/// restore rebuilds the program (deterministic builders) and replays the
/// recorded completion order through the wake-up edges, consuming the
/// bodies of already-dispatched tasks whose functional effect is already
/// in the restored memory image.
pub struct Driver {
    pub(crate) cfg: MachineConfig,
    pub(crate) mode: CoherenceMode,
    pub(crate) machine: Machine,
    mem: SimMemory,
    graph: TaskGraph,
    edges: usize,
    watchdog: Option<Watchdog>,
    retry_book: Option<RetryBook>,
    degrade: Option<DegradeController>,
    detection: Option<DetectReason>,
    ncrts: Vec<Ncrt>,
    pt: PageClassifier,
    tlbc: TlbClassifier,
    census: Census,
    ready: Box<dyn Scheduler>,
    /// Quantum-preempted tasks awaiting re-dispatch: their trace and
    /// progress survive here while their id waits in the ready queue.
    parked: BTreeMap<raccd_runtime::TaskId, Running>,
    /// Cycle at which each context's current task was (re)dispatched —
    /// the quantum clock for [`SchedKind::Quantum`].
    quantum_start: Vec<u64>,
    pub(crate) running: Vec<Option<Running>>,
    waker_core: Vec<Option<u32>>,
    wake_time: Vec<u64>,
    trace_pool: Vec<Vec<MemRef>>,
    core_time: Vec<u64>,
    idle: Vec<usize>,
    pub(crate) heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Tasks in the order they completed (the graph replay script).
    completion_order: Vec<raccd_runtime::TaskId>,
    end_time: u64,
    ckpt_interval: Option<u64>,
    next_ckpt: u64,
    last_ckpt: Option<Snapshot>,
    rollbacks: u32,
    /// Decode time and payload bytes measured during [`Driver::restore`],
    /// held until a profiler is attached (restore runs before
    /// [`Driver::attach_prof`] can), then credited to `snap/decode`.
    pending_decode: Option<(u64, u64)>,
}

impl Driver {
    /// Set up a run: build the machine, arm resilience (with a plan),
    /// announce the TDG to the recorder and seed the ready set.
    pub fn new(
        cfg: MachineConfig,
        mode: CoherenceMode,
        program: Program,
        plan: Option<FaultPlan>,
        mut rec: Option<&mut Recorder>,
    ) -> Driver {
        let Program { mem, graph } = program;
        let edges = graph.edges();
        // Scheduling happens over hardware contexts: cores × SMT ways
        // (§III-E). Context `x` is hardware thread `x % smt_ways` of core
        // `x / smt_ways`.
        let nctx = cfg.ncontexts();

        let mut machine = Machine::new(cfg);
        // Under RaCCD without SMT, a core's NC fills must fall inside the
        // ranges its NCRT currently holds — arm the shadow checker's
        // registration-discipline invariant. (With SMT, sibling contexts
        // share a core-level view the per-core mirror cannot track.)
        if machine.has_checker() && mode == CoherenceMode::Raccd && cfg.smt_ways == 1 {
            machine.check_note(CheckEvent::DisciplineOn);
        }
        if let Some(p) = plan {
            machine.attach_faults(FaultPlane::new(p));
        }
        // The effective plan also covers `RACCD_FAULT_SPEC`
        // auto-attachment. Watchdog, retry book and degrade controller are
        // armed only with a plane attached, so fault-free runs are
        // bit-identical to the seed.
        let fplan = machine.fault_plan();
        let watchdog = fplan.map(|p| Watchdog::new(p.watchdog_cycles));
        let retry_book = fplan.map(|p| RetryBook::new(graph.len(), p.task_retry_budget));
        let degrade = fplan.map(|p| DegradeController::new(&p));
        let ncrts = (0..nctx).map(|_| Ncrt::new(cfg.ncrt_entries)).collect();

        let mut ready = raccd_sched::build(cfg.sched, &sched_params(&cfg, &graph));
        // Telemetry: announce the TDG and the initial ready set at cycle 0.
        if let Some(r) = rec.as_deref_mut() {
            for t in 0..graph.len() {
                let name = r.intern(graph.name(t));
                r.record(Event::TaskCreated {
                    cycle: 0,
                    task: t as u32,
                    name,
                    deps: graph.deps(t).len() as u32,
                });
            }
        }
        // Initial ready set: central queue in creation order; work stealing
        // distributes round-robin so every context starts with local work.
        for (i, t) in graph.initially_ready().into_iter().enumerate() {
            if let Some(r) = rec.as_deref_mut() {
                r.record(Event::TaskWoken {
                    cycle: 0,
                    task: t as u32,
                    waker_core: None,
                });
            }
            ready.push(i % nctx, t);
        }

        let waker_core = vec![None; graph.len()];
        let wake_time = vec![0u64; graph.len()];
        Driver {
            cfg,
            mode,
            machine,
            mem,
            graph,
            edges,
            watchdog,
            retry_book,
            degrade,
            detection: None,
            ncrts,
            pt: PageClassifier::new(),
            tlbc: TlbClassifier::new(),
            census: Census::new(),
            ready,
            parked: BTreeMap::new(),
            quantum_start: vec![0u64; nctx],
            running: (0..nctx).map(|_| None).collect(),
            waker_core,
            wake_time,
            trace_pool: (0..nctx).map(|_| Vec::new()).collect(),
            core_time: vec![0u64; nctx],
            idle: Vec::new(),
            heap: (0..nctx).map(|c| Reverse((0u64, c))).collect(),
            completion_order: Vec::new(),
            end_time: 0,
            ckpt_interval: None,
            next_ckpt: 0,
            last_ckpt: None,
            rollbacks: 0,
            pending_decode: None,
        }
    }

    /// Attach the self-profiler (host wall-time attribution per
    /// [`raccd_prof::Site`]; see [`run_program_profiled`]). A decode
    /// measurement pending from [`Driver::restore`] is credited to the
    /// fresh profiler's `snap/decode` site.
    pub fn attach_prof(&mut self) {
        let p = Box::new(Prof::new());
        if let Some((ns, bytes)) = self.pending_decode.take() {
            p.rec_ns(Site::SnapDecode, ns, bytes);
        }
        self.machine.attach_prof(p);
    }

    /// The attached profiler, if any.
    pub fn prof(&self) -> Option<&Prof> {
        self.machine.prof()
    }

    /// Auto-checkpoint every `cycles` heap cycles; the latest snapshot is
    /// retrievable via [`Driver::take_last_checkpoint`].
    pub fn set_checkpoint_interval(&mut self, cycles: u64) {
        let cycles = cycles.max(1);
        self.ckpt_interval = Some(cycles);
        let now = self.heap.peek().map(|&Reverse((t, _))| t).unwrap_or(0);
        self.next_ckpt = now + cycles;
    }

    /// Take the most recent auto-checkpoint, if one was captured.
    pub fn take_last_checkpoint(&mut self) -> Option<Snapshot> {
        self.last_ckpt.take()
    }

    /// Why the run was aborted as detected, if it was.
    pub fn detection(&self) -> Option<DetectReason> {
        self.detection
    }

    /// Tasks retired so far.
    pub fn completed_tasks(&self) -> usize {
        self.completion_order.len()
    }

    /// The next heap cycle to be processed (None when the run is over).
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|&Reverse((t, _))| t)
    }

    /// Canonical shadow coherence fingerprint (None without a checker).
    pub fn shadow_state_key(&self) -> Option<String> {
        self.machine.shadow_state_key()
    }

    /// Reseed the attached fault plane's RNG (no-op without one). Rollback
    /// recovery calls this so the replayed interval does not re-roll the
    /// identical faults.
    pub fn reseed_faults(&mut self, salt: u64) {
        if let Some(f) = self.machine.faults_mut() {
            f.reseed(salt);
        }
    }

    /// Process heap entries until the next entry lies beyond `cycle`.
    /// Returns `true` while the run is still live (more work pending).
    pub fn run_until(&mut self, cycle: u64, mut rec: Option<&mut Recorder>) -> bool {
        while let Some(&Reverse((t, _))) = self.heap.peek() {
            if t > cycle {
                return true;
            }
            if !self.step(rec.as_deref_mut()) {
                return false;
            }
        }
        false
    }

    /// Run to the end and produce the output.
    pub fn finish(mut self, mut rec: Option<&mut Recorder>) -> DriverOutput {
        while self.step(rec.as_deref_mut()) {}
        self.into_output(rec)
    }

    /// Process one heap entry (one core turn). Returns `false` when the
    /// run is over: the heap drained or a detection aborted it.
    pub fn step(&mut self, rec: Option<&mut Recorder>) -> bool {
        self.step_spec(None, rec)
    }

    /// [`Driver::step`] with an optional speculated hit prefix for the
    /// turn being popped. With `Some(prefix)` the turn's leading private
    /// hits were pre-executed off-thread on a shard clone (see
    /// [`raccd_sim::spec`]); the prefix is committed by adopting the shard
    /// and replaying its deferred side effects in exact serial order, then
    /// the rest of the batch runs through the unchanged serial path. The
    /// epoch-parallel engine is the only caller that passes `Some`; it
    /// guarantees the shard is still current (heap-agreement + the
    /// machine's spec-touch mask).
    pub(crate) fn step_spec(
        &mut self,
        spec: Option<raccd_sim::HitPrefix>,
        mut rec: Option<&mut Recorder>,
    ) -> bool {
        let t_step = raccd_prof::t0(self.machine.prof());
        // Auto-checkpoint on iteration boundaries (state is consistent
        // only between core turns).
        if let Some(interval) = self.ckpt_interval {
            if let Some(&Reverse((t, _))) = self.heap.peek() {
                if t >= self.next_ckpt {
                    self.last_ckpt = Some(self.snapshot());
                    self.next_ckpt = t + interval;
                }
            }
        }
        let Some(Reverse((t, ctx))) = self.heap.pop() else {
            return false;
        };
        // Resilience checks ride the heap clock (only armed with a fault
        // plane attached). A detection aborts the run *visibly*: the
        // caller sees `fault.detected`, never silently wrong output.
        if let Some(w) = self.watchdog.as_ref() {
            if w.expired(t) {
                self.machine.stats.watchdog_fires += 1;
                self.detection = Some(DetectReason::Watchdog {
                    last_progress: w.last_progress,
                    threshold: w.threshold,
                });
                if let Some(r) = rec.as_deref_mut() {
                    r.record(Event::WatchdogFired {
                        cycle: t,
                        last_progress: w.last_progress,
                        threshold: w.threshold,
                    });
                }
                return false;
            }
        }
        if self.machine.fault_fatal() {
            self.detection = Some(DetectReason::MsgRetryBudget);
            return false;
        }
        if let Some(d) = self.degrade.as_mut() {
            if self.mode == CoherenceMode::Raccd
                && d.observe(
                    t,
                    self.machine.stats.ncrt_overflows,
                    self.machine.stats.msg_retries,
                )
            {
                self.machine.stats.mode_downgrades += 1;
                let (ov, rt) = d.last_deltas(
                    self.machine.stats.ncrt_overflows,
                    self.machine.stats.msg_retries,
                );
                if let Some(r) = rec.as_deref_mut() {
                    r.record(Event::ModeDowngrade {
                        cycle: t,
                        overflows: ov,
                        retries: rt,
                    });
                }
            }
        }
        // Under sustained pressure RaCCD falls back to full coherence for
        // everything *new*; tasks already running keep their NC lines
        // until their normal end-of-task flush.
        let eff_mode = match self.degrade.as_ref() {
            Some(d) if d.degraded() && self.mode == CoherenceMode::Raccd => CoherenceMode::FullCoh,
            _ => self.mode,
        };
        // Telemetry: the heap time is globally non-decreasing, so it is
        // the sampling clock; machine protocol events are drained here so
        // the unified stream stays roughly time-ordered.
        if let Some(r) = rec.as_deref_mut() {
            if r.sample_due(t) {
                let c = self.ready.counters();
                let gauges = Gauges {
                    dir_occupied: self.machine.dir_occupied_total(),
                    dir_capacity: self.machine.dir_capacity_total(),
                    ready_tasks: self.ready.len() as u64,
                    busy_contexts: self.running.iter().filter(|x| x.is_some()).count() as u32,
                    sched_popped: c.popped,
                    sched_steals: c.steals,
                };
                r.maybe_sample(t, &self.machine.stats, gauges);
            }
            for te in self.machine.take_events() {
                if let CoherenceEvent::RetryRecovered { delay, .. } = te.ev {
                    r.hist_retry_latency.record(delay);
                }
                r.record(Event::Coherence {
                    cycle: te.cycle,
                    ev: te.ev,
                });
            }
        }
        let mut now = t;
        let core = ctx / self.cfg.smt_ways;
        let tid = (ctx % self.cfg.smt_ways) as u8;
        match self.running[ctx].take() {
            None => {
                // Scheduling phase.
                let t_sched = raccd_prof::t0(self.machine.prof());
                if let Some(task) = self.ready.pop(ctx) {
                    now += self.cfg.runtime.schedule + sched_jitter(ctx, task as u64);
                    if let Some(w) = self.waker_core[task] {
                        if w as usize != core {
                            self.machine.stats.task_migrations += 1;
                            // Migration-aware NCRT hand-off: the task's
                            // regions were produced (or, after preemption,
                            // previously registered and flushed) on `w`;
                            // the register loop below re-registers them on
                            // this core. Count the churn RaCCD pays for it.
                            if eff_mode == CoherenceMode::Raccd {
                                self.machine.stats.ncrt_migrations += 1;
                            }
                            if let Some(r) = rec.as_deref_mut() {
                                r.record(Event::TaskMigrated {
                                    cycle: now,
                                    task: task as u32,
                                    from_core: w,
                                    to_core: core as u32,
                                });
                            }
                        }
                    }
                    if let Some(r) = rec.as_deref_mut() {
                        let wait = now.saturating_sub(self.wake_time[task]);
                        r.hist_wake_to_dispatch.record(wait);
                        let name = r.intern(self.graph.name(task));
                        r.record(Event::TaskScheduled {
                            cycle: now,
                            task: task as u32,
                            name,
                            ctx: ctx as u32,
                            core: core as u32,
                            wait_cycles: wait,
                        });
                    }
                    raccd_prof::rec(self.machine.prof(), Site::Schedule, t_sched);
                    if eff_mode == CoherenceMode::Raccd {
                        // Deactivate coherence: one raccd_register per
                        // dependence (§III-B).
                        for i in 0..self.graph.deps(task).len() {
                            let range = self.graph.deps(task)[i].range;
                            // Injected NCRT-pressure storm: the register
                            // is rejected; the region simply stays
                            // coherent (graceful degradation, counted as
                            // an overflow for the degrade controller).
                            let stormed = self
                                .machine
                                .faults_mut()
                                .map(|f| f.ncrt_storm(now))
                                .unwrap_or(false);
                            if stormed {
                                self.machine.stats.ncrt_overflows += 1;
                                continue;
                            }
                            let reg_start = now;
                            let t_reg = raccd_prof::t0(self.machine.prof());
                            let out = self.ncrts[ctx].register_region(
                                &mut self.machine,
                                core,
                                range,
                                &self.cfg.runtime,
                            );
                            raccd_prof::rec(self.machine.prof(), Site::NcrtRegister, t_reg);
                            now += out.cycles;
                            self.machine.stats.register_cycles += out.cycles;
                            if out.overflowed {
                                self.machine.stats.ncrt_overflows += 1;
                            }
                            if let Some(r) = rec.as_deref_mut() {
                                r.record(Event::NcrtRegister {
                                    cycle: reg_start,
                                    ctx: ctx as u32,
                                    core: core as u32,
                                    task: task as u32,
                                    dur: out.cycles,
                                    entries_added: out.entries_added as u32,
                                    tlb_lookups: out.tlb_lookups as u32,
                                    overflowed: out.overflowed,
                                });
                            }
                        }
                        if self.machine.has_checker() && self.cfg.smt_ways == 1 {
                            self.machine.check_note(CheckEvent::NcrtLoaded {
                                core,
                                ranges: self.ncrts[ctx].entries().to_vec(),
                            });
                        }
                    }
                    if let Some(run) = self.parked.remove(&task) {
                        // Resuming a quantum-preempted task: its trace and
                        // progress survived in the parked map, its body
                        // already ran, and the register loop above just
                        // re-armed the NCRT on this (possibly different)
                        // core — the migration hand-off. The quantum clock
                        // restarts from this dispatch.
                        debug_assert_eq!(run.tid, task);
                        self.quantum_start[ctx] = now;
                        self.running[ctx] = Some(run);
                        self.heap.push(Reverse((now, ctx)));
                    } else {
                        // Run the body functionally, recording the trace.
                        let t_body = raccd_prof::t0(self.machine.prof());
                        let body = self.graph.take_body(task);
                        let mut trace = std::mem::take(&mut self.trace_pool[ctx]);
                        trace.clear();
                        {
                            let mut tcx = TaskCtx::new(&mut self.mem, &mut trace);
                            body(&mut tcx);
                            tcx.stack_traffic(self.cfg.runtime.stack_words_per_task);
                        }
                        raccd_prof::rec(self.machine.prof(), Site::TaskBody, t_body);
                        self.machine.stats.tasks_executed += 1;
                        // Fault plane: roll this dispatch for a straggler
                        // delay and/or a mid-replay failure point.
                        let mut fail_at = None;
                        let trace_len = trace.len();
                        if let Some(inj) = self
                            .machine
                            .faults_mut()
                            .map(|f| f.roll_task(now, trace_len))
                        {
                            fail_at = inj.fail_at;
                            if inj.straggle > 0 {
                                self.machine.stats.task_straggles += 1;
                                now += inj.straggle;
                            }
                        }
                        self.quantum_start[ctx] = now;
                        self.running[ctx] = Some(Running {
                            tid: task,
                            trace,
                            pos: 0,
                            fail_at,
                        });
                        self.heap.push(Reverse((now, ctx)));
                    }
                } else {
                    // Nothing ready: park until a wake-up re-arms us.
                    raccd_prof::rec(self.machine.prof(), Site::Schedule, t_sched);
                    self.core_time[ctx] = now;
                    self.end_time = self.end_time.max(now);
                    self.idle.push(ctx);
                }
            }
            Some(mut run) => {
                // Task execution phase: replay a batch of references.
                let end = (run.pos + BATCH).min(run.trace.len());
                if let Some(prefix) = spec {
                    // Commit a speculated hit prefix: adopt the shard (the
                    // exact state the serial hit path would have produced),
                    // then replay the deferred per-reference side effects —
                    // checker events, census, refs counter, latency
                    // histograms — in serial order. Hits never touch a
                    // bank, so the bank-wait histogram records zeros.
                    debug_assert!(run.pos + prefix.refs.len() <= end);
                    debug_assert!(run.fail_at.is_none_or(|f| f >= end));
                    let t_merge = raccd_prof::t0(self.machine.prof());
                    let nrefs = prefix.refs.len() as u64;
                    self.machine.adopt_core_shard(core, prefix.shard);
                    for s in &prefix.refs {
                        self.machine.note_spec_hit(core, s.block, s.write, s.nc);
                        self.census.record(s.block, !s.nc);
                        self.machine.stats.refs_processed += 1;
                        now += s.cycles;
                        if let Some(rr) = rec.as_deref_mut() {
                            rr.hist_mem_latency.record(s.cycles);
                            rr.hist_bank_wait.record(0);
                        }
                    }
                    run.pos += prefix.refs.len();
                    raccd_prof::rec_units(self.machine.prof(), Site::EpochMerge, t_merge, nrefs);
                }
                let mut failed = false;
                while run.pos < end {
                    if run.fail_at == Some(run.pos) {
                        failed = true;
                        break;
                    }
                    let r = run.trace[run.pos];
                    run.pos += 1;
                    let bank_wait_before = self.machine.stats.bank_wait_cycles;
                    let t_ref = raccd_prof::t0(self.machine.prof());
                    let cycles = process_ref(
                        &mut self.machine,
                        eff_mode,
                        ctx,
                        core,
                        tid,
                        r,
                        now,
                        &mut self.ncrts[ctx],
                        &mut self.pt,
                        &mut self.tlbc,
                        &mut self.census,
                        &self.cfg,
                        rec.as_deref_mut(),
                    );
                    raccd_prof::rec(self.machine.prof(), Site::MemRef, t_ref);
                    now += cycles;
                    if let Some(rr) = rec.as_deref_mut() {
                        rr.hist_mem_latency.record(cycles);
                        rr.hist_bank_wait
                            .record(self.machine.stats.bank_wait_cycles - bank_wait_before);
                    }
                }
                if failed {
                    // Injected task failure: abort this attempt. RaCCD's
                    // raccd_invalidate discards the attempt's NC residue,
                    // which is exactly what makes re-execution idempotent
                    // (the oracle asserts this in the fault campaign).
                    self.machine.stats.task_retries += 1;
                    let decision = self
                        .retry_book
                        .as_mut()
                        .map(|b| b.note_failure(run.tid))
                        .unwrap_or(RetryDecision::Exhausted);
                    match decision {
                        RetryDecision::Exhausted => {
                            self.detection = Some(DetectReason::TaskRetryBudget { task: run.tid });
                        }
                        RetryDecision::Retry(attempt) => {
                            if self.mode == CoherenceMode::Raccd {
                                let flt = if self.cfg.smt_ways > 1 && self.cfg.smt_selective_flush {
                                    Some(tid)
                                } else {
                                    None
                                };
                                let t_inv = raccd_prof::t0(self.machine.prof());
                                let cycles = self.machine.flush_nc_filtered(core, flt, now);
                                raccd_prof::rec(self.machine.prof(), Site::NcInvalidate, t_inv);
                                self.machine.stats.invalidate_cycles += cycles;
                                now += cycles;
                                if self.machine.has_checker() && self.cfg.smt_ways == 1 {
                                    self.machine.check_note(CheckEvent::NcInvalidate { core });
                                    // The NCRT itself survives the abort:
                                    // re-arm the discipline mirror.
                                    self.machine.check_note(CheckEvent::NcrtLoaded {
                                        core,
                                        ranges: self.ncrts[ctx].entries().to_vec(),
                                    });
                                }
                            }
                            if let Some(r) = rec.as_deref_mut() {
                                r.record(Event::TaskRetry {
                                    cycle: now,
                                    task: run.tid as u32,
                                    ctx: ctx as u32,
                                    attempt,
                                });
                            }
                            // Fresh roll: the retry may fail elsewhere.
                            let trace_len = run.trace.len();
                            run.fail_at = self
                                .machine
                                .faults_mut()
                                .and_then(|f| f.roll_task(now, trace_len).fail_at);
                            run.pos = 0;
                            self.running[ctx] = Some(run);
                            self.heap.push(Reverse((now, ctx)));
                        }
                    }
                } else if run.pos < run.trace.len() {
                    // Quantum preemption (SchedKind::Quantum only):
                    // decided deterministically at batch boundaries, and
                    // only when another task is actually waiting — a lone
                    // task never bounces. The preempted task flushes its
                    // NC residue exactly like a completing task (the NCRT
                    // hand-off is re-registration at the next dispatch),
                    // re-enters the ready queue at the back, and the
                    // decision lands in the append-only audit log.
                    let expired = self
                        .ready
                        .quantum()
                        .is_some_and(|q| now.saturating_sub(self.quantum_start[ctx]) >= q);
                    if expired && !self.ready.is_empty() {
                        if self.mode == CoherenceMode::Raccd {
                            let flt = if self.cfg.smt_ways > 1 && self.cfg.smt_selective_flush {
                                Some(tid)
                            } else {
                                None
                            };
                            let inv_start = now;
                            let flushed_before = self.machine.stats.nc_lines_flushed;
                            let t_inv = raccd_prof::t0(self.machine.prof());
                            let cycles = self.machine.flush_nc_filtered(core, flt, now);
                            raccd_prof::rec(self.machine.prof(), Site::NcInvalidate, t_inv);
                            self.machine.stats.invalidate_cycles += cycles;
                            now += cycles;
                            self.ncrts[ctx].clear();
                            if self.machine.has_checker() && self.cfg.smt_ways == 1 {
                                self.machine.check_note(CheckEvent::NcInvalidate { core });
                            }
                            if let Some(r) = rec.as_deref_mut() {
                                r.record(Event::NcrtInvalidate {
                                    cycle: inv_start,
                                    ctx: ctx as u32,
                                    core: core as u32,
                                    task: run.tid as u32,
                                    dur: cycles,
                                    lines_flushed: self.machine.stats.nc_lines_flushed
                                        - flushed_before,
                                });
                            }
                        }
                        self.machine.stats.preemptions += 1;
                        self.ready.note_preempt(PreemptRecord {
                            cycle: now,
                            task: run.tid,
                            ctx,
                            pos: run.pos,
                            remaining: run.trace.len() - run.pos,
                        });
                        self.waker_core[run.tid] = Some(core as u32);
                        self.wake_time[run.tid] = now;
                        if let Some(r) = rec.as_deref_mut() {
                            r.record(Event::TaskWoken {
                                cycle: now,
                                task: run.tid as u32,
                                waker_core: Some(core as u32),
                            });
                        }
                        self.ready.push(ctx, run.tid);
                        self.parked.insert(run.tid, run);
                        self.heap.push(Reverse((now, ctx)));
                    } else {
                        self.running[ctx] = Some(run);
                        self.heap.push(Reverse((now, ctx)));
                    }
                } else {
                    // Invalidate non-coherent data (RaCCD only), then the
                    // wake-up phase.
                    if self.mode == CoherenceMode::Raccd {
                        let flt = if self.cfg.smt_ways > 1 && self.cfg.smt_selective_flush {
                            Some(tid)
                        } else {
                            None
                        };
                        let inv_start = now;
                        let flushed_before = self.machine.stats.nc_lines_flushed;
                        let t_inv = raccd_prof::t0(self.machine.prof());
                        let cycles = self.machine.flush_nc_filtered(core, flt, now);
                        raccd_prof::rec(self.machine.prof(), Site::NcInvalidate, t_inv);
                        self.machine.stats.invalidate_cycles += cycles;
                        now += cycles;
                        self.ncrts[ctx].clear();
                        if self.machine.has_checker() && self.cfg.smt_ways == 1 {
                            self.machine.check_note(CheckEvent::NcInvalidate { core });
                        }
                        if let Some(r) = rec.as_deref_mut() {
                            r.record(Event::NcrtInvalidate {
                                cycle: inv_start,
                                ctx: ctx as u32,
                                core: core as u32,
                                task: run.tid as u32,
                                dur: cycles,
                                lines_flushed: self.machine.stats.nc_lines_flushed - flushed_before,
                            });
                        }
                    }
                    let ndeps = self.graph.dependent_count(run.tid) as u64;
                    now += self.cfg.runtime.wakeup_base + ndeps * self.cfg.runtime.wakeup_per_dep;
                    if let Some(r) = rec.as_deref_mut() {
                        r.record(Event::TaskCompleted {
                            cycle: now,
                            task: run.tid as u32,
                            ctx: ctx as u32,
                            refs: run.trace.len() as u64,
                        });
                    }
                    for woken in self.graph.complete(run.tid) {
                        self.waker_core[woken] = Some(core as u32);
                        self.wake_time[woken] = now;
                        if let Some(r) = rec.as_deref_mut() {
                            r.record(Event::TaskWoken {
                                cycle: now,
                                task: woken as u32,
                                waker_core: Some(core as u32),
                            });
                        }
                        self.ready.push(ctx, woken);
                    }
                    self.completion_order.push(run.tid);
                    if let Some(w) = self.watchdog.as_mut() {
                        w.note_progress(now);
                    }
                    self.trace_pool[ctx] = run.trace;
                    // Unpark idle cores while work is available.
                    let mut avail = self.ready.len();
                    while avail > 0 {
                        match self.idle.pop() {
                            Some(ic) => {
                                let wake = self.core_time[ic].max(now)
                                    + sched_jitter(ic, self.completion_order.len() as u64);
                                self.heap.push(Reverse((wake, ic)));
                                avail -= 1;
                            }
                            None => break,
                        }
                    }
                    self.running[ctx] = None;
                    self.heap.push(Reverse((now, ctx)));
                }
            }
        }
        self.machine.stats.busy_cycles += now - t;
        self.core_time[ctx] = now;
        self.end_time = self.end_time.max(now);
        raccd_prof::rec(self.machine.prof(), Site::Step, t_step);
        self.detection.is_none()
    }

    /// Capture the entire run as a [`Snapshot`]: every machine section
    /// (see [`Machine::snapshot`]) plus the driver's runtime state.
    pub fn snapshot(&self) -> Snapshot {
        let t = raccd_prof::t0(self.machine.prof());
        let mut s = self.machine.snapshot();
        s.put("driver/mode", &self.mode);
        s.put("driver/mem", &self.mem);
        s.put("driver/ntasks", &self.graph.len());
        s.put("driver/completion_order", &self.completion_order);
        s.put("driver/watchdog", &self.watchdog);
        s.put("driver/retry_book", &self.retry_book);
        s.put("driver/degrade", &self.degrade);
        s.put("driver/ncrts", &self.ncrts);
        s.put("driver/pt", &self.pt);
        s.put("driver/tlbc", &self.tlbc);
        s.put("driver/census", &self.census);
        // The scheduler serialises behind its registry tag; machine-shape
        // inputs (sockets, priorities, quantum) are rebuilt on restore.
        let mut w = raccd_snap::SnapWriter::new();
        raccd_sched::save(self.ready.as_ref(), &mut w);
        s.put_raw("driver/sched", w.into_bytes());
        s.put("driver/parked", &self.parked);
        s.put("driver/quantum_start", &self.quantum_start);
        s.put("driver/running", &self.running);
        s.put("driver/waker_core", &self.waker_core);
        s.put("driver/wake_time", &self.wake_time);
        s.put("driver/core_time", &self.core_time);
        s.put("driver/idle", &self.idle);
        let mut heap: Vec<(u64, usize)> = self.heap.iter().map(|&Reverse(x)| x).collect();
        heap.sort_unstable();
        s.put("driver/heap", &heap);
        s.put("driver/end_time", &self.end_time);
        s.put("driver/rollbacks", &self.rollbacks);
        raccd_prof::rec_units(self.machine.prof(), Site::SnapEncode, t, s.payload_bytes());
        s
    }

    /// Revive a run from a snapshot. `cfg` and `mode` must match the
    /// captured run, and `program` must be the same program rebuilt (the
    /// builders are deterministic); the graph is replayed to the captured
    /// point rather than deserialized, because task bodies are closures.
    pub fn restore(
        cfg: MachineConfig,
        mode: CoherenceMode,
        program: Program,
        s: &Snapshot,
    ) -> Result<Driver, SnapError> {
        // Decode time is measured unconditionally (restore is rare and the
        // clock reads touch no simulated state); the measurement is parked
        // in `pending_decode` and credited iff a profiler is attached.
        let t_decode = std::time::Instant::now();
        let smode: CoherenceMode = s.get("driver/mode")?;
        if smode != mode {
            return Err(SnapError::Invalid("coherence mode mismatch"));
        }
        let mut machine = Machine::new(cfg);
        machine.restore(s)?;
        let Program { mem: _, mut graph } = program;
        let edges = graph.edges();
        let ntasks: usize = s.get("driver/ntasks")?;
        if graph.len() != ntasks {
            return Err(SnapError::Invalid("program shape mismatch"));
        }
        let nctx = cfg.ncontexts();
        // Scheduler params must be derived while the graph is still
        // pristine: the replay below consumes the dependent lists the
        // critical-path priorities are computed from.
        let sched_params = sched_params(&cfg, &graph);
        let completion_order: Vec<raccd_runtime::TaskId> = s.get("driver/completion_order")?;
        let running: Vec<Option<Running>> = s.get("driver/running")?;
        let ncrts: Vec<Ncrt> = s.get("driver/ncrts")?;
        let waker_core: Vec<Option<u32>> = s.get("driver/waker_core")?;
        let wake_time: Vec<u64> = s.get("driver/wake_time")?;
        let core_time: Vec<u64> = s.get("driver/core_time")?;
        let idle: Vec<usize> = s.get("driver/idle")?;
        let heap_vec: Vec<(u64, usize)> = s.get("driver/heap")?;
        if running.len() != nctx
            || ncrts.len() != nctx
            || core_time.len() != nctx
            || waker_core.len() != ntasks
            || wake_time.len() != ntasks
            || idle.iter().any(|&c| c >= nctx)
            || heap_vec.iter().any(|&(_, c)| c >= nctx)
        {
            return Err(SnapError::Invalid("driver geometry"));
        }
        // Replay the TDG to the captured point: completions re-walk the
        // wake-up edges in their original order; bodies of completed and
        // in-flight tasks are consumed (their functional effect is already
        // in the restored memory image).
        let mut seen = vec![false; ntasks];
        for &id in &completion_order {
            if id >= ntasks || seen[id] {
                return Err(SnapError::Invalid("completion order"));
            }
            seen[id] = true;
            drop(graph.take_body(id));
            let _ = graph.complete(id);
        }
        for run in running.iter().flatten() {
            if run.tid >= ntasks || seen[run.tid] {
                return Err(SnapError::Invalid("running task id"));
            }
            seen[run.tid] = true;
            drop(graph.take_body(run.tid));
        }
        // Quantum-preempted tasks: dispatched (body consumed) but neither
        // running nor complete. Sections are optional so pre-scheduler
        // snapshots restore with the empty defaults.
        let parked: BTreeMap<raccd_runtime::TaskId, Running> = if s.has("driver/parked") {
            s.get("driver/parked")?
        } else {
            BTreeMap::new()
        };
        for (&id, run) in &parked {
            if id >= ntasks || seen[id] || run.tid != id {
                return Err(SnapError::Invalid("parked task id"));
            }
            seen[id] = true;
            drop(graph.take_body(id));
        }
        let quantum_start: Vec<u64> = if s.has("driver/quantum_start") {
            s.get("driver/quantum_start")?
        } else {
            vec![0u64; nctx]
        };
        if quantum_start.len() != nctx {
            return Err(SnapError::Invalid("quantum clock geometry"));
        }
        let ready = {
            let bytes = s.raw("driver/sched")?;
            let mut r = raccd_snap::SnapReader::new(bytes);
            let sched = raccd_sched::load(&mut r, &sched_params)?;
            if r.remaining() != 0 {
                return Err(SnapError::TrailingBytes);
            }
            if sched.kind() != cfg.sched {
                return Err(SnapError::Invalid("sched policy mismatch"));
            }
            sched
        };
        Ok(Driver {
            cfg,
            mode,
            machine,
            mem: s.get("driver/mem")?,
            graph,
            edges,
            watchdog: s.get("driver/watchdog")?,
            retry_book: s.get("driver/retry_book")?,
            degrade: s.get("driver/degrade")?,
            detection: None,
            ncrts,
            pt: s.get("driver/pt")?,
            tlbc: s.get("driver/tlbc")?,
            census: s.get("driver/census")?,
            ready,
            parked,
            quantum_start,
            running,
            waker_core,
            wake_time,
            trace_pool: (0..nctx).map(|_| Vec::new()).collect(),
            core_time,
            idle,
            heap: heap_vec.into_iter().map(Reverse).collect(),
            completion_order,
            end_time: s.get("driver/end_time")?,
            ckpt_interval: None,
            next_ckpt: 0,
            last_ckpt: None,
            rollbacks: s.get("driver/rollbacks")?,
            pending_decode: Some((t_decode.elapsed().as_nanos() as u64, s.payload_bytes())),
        })
    }

    /// Tear the run down into its output. Must only be called once the
    /// run is over ([`Driver::step`] returned `false`).
    pub(crate) fn into_output(mut self, mut rec: Option<&mut Recorder>) -> DriverOutput {
        let completed = self.completion_order.len();
        // A detection ends the run early by design; only a clean run
        // promises every task retired.
        if self.detection.is_none() {
            assert_eq!(
                completed,
                self.graph.len(),
                "simulation ended with unexecuted tasks (TDG cycle?)"
            );
        }
        drop(self.graph);

        self.machine.stats.contexts = self.cfg.ncontexts() as u64;
        let mut events = self.machine.take_events();
        if let Some(r) = rec.as_deref_mut() {
            // Tail of the protocol stream goes to the recorder, like the
            // rest.
            for te in events.drain(..) {
                if let CoherenceEvent::RetryRecovered { delay, .. } = te.ev {
                    r.hist_retry_latency.record(delay);
                }
                r.record(Event::Coherence {
                    cycle: te.cycle,
                    ev: te.ev,
                });
            }
        }
        // Unified scheduler counters land in Stats just before the final
        // freeze, so every policy reports them symmetrically.
        let c = self.ready.counters();
        self.machine.stats.sched_pushed = c.pushed;
        self.machine.stats.sched_popped = c.popped;
        self.machine.stats.sched_local_pops = c.local_pops;
        self.machine.stats.sched_steals = c.steals;
        let stats = self.machine.finalize(self.end_time);
        if let Some(r) = rec {
            r.finish(
                self.end_time,
                &stats,
                Gauges {
                    dir_occupied: self.machine.dir_occupied_total(),
                    dir_capacity: self.machine.dir_capacity_total(),
                    ready_tasks: 0,
                    busy_contexts: 0,
                    sched_popped: c.popped,
                    sched_steals: c.steals,
                },
            );
        }
        let prof = self.machine.take_prof().map(|p| p.report());
        let check = self.machine.detach_checker();
        let fault = self.machine.fault_stats().map(|fs| FaultReport {
            stats: fs,
            detected: self.detection,
            degraded: self.degrade.as_ref().is_some_and(|d| d.degraded()),
            tasks_completed: completed,
            task_retries: stats.task_retries,
            rollbacks: self.rollbacks,
        });
        DriverOutput {
            stats,
            events,
            census: self.census,
            mem: self.mem,
            tasks: completed,
            edges: self.edges,
            check,
            fault,
            prof,
            audit: self.ready.audit().to_vec(),
        }
    }
}

/// Process one memory reference of hardware context `ctx` (thread `tid` on
/// `core`) at time `now`. Returns cycles.
#[allow(clippy::too_many_arguments)]
fn process_ref(
    machine: &mut Machine,
    mode: CoherenceMode,
    ctx: usize,
    core: usize,
    tid: u8,
    r: MemRef,
    now: u64,
    ncrt: &mut Ncrt,
    pt: &mut PageClassifier,
    tlbc: &mut TlbClassifier,
    census: &mut Census,
    cfg: &MachineConfig,
    rec: Option<&mut Recorder>,
) -> u64 {
    let vaddr = if r.is_stack() {
        VAddr(cfg.stack_base(ctx) + r.addr().0)
    } else {
        r.addr()
    };
    // The TLB-classifier mode owns translation (it piggybacks the
    // private/shared resolution on TLB misses, §II-B).
    let mut page_private = false;
    let (paddr, mut cycles) = if mode == CoherenceMode::TlbClass {
        let out = tlbc.translate(machine, core, vaddr, now);
        page_private = out.private;
        (out.paddr, out.cycles)
    } else {
        machine.translate(core, vaddr)
    };
    let block = paddr.block();
    let write = r.is_write();

    // PT classification acts on every access (the OS sees the touch).
    if mode == CoherenceMode::PageTable {
        match pt.on_access(core, paddr.page()) {
            PtDecision::Private => page_private = true,
            PtDecision::Shared => {}
            PtDecision::Transition { prev_owner } => {
                machine.stats.pt_shared_transitions += 1;
                let flushed_before = machine.stats.pt_flush_lines;
                cycles += machine.flush_page(prev_owner, paddr.page(), vaddr.page(), now);
                if let Some(r) = rec {
                    r.record(Event::PtTransition {
                        cycle: now,
                        prev_owner: prev_owner as u32,
                        page: paddr.page().0,
                        flushed_lines: machine.stats.pt_flush_lines - flushed_before,
                    });
                }
            }
        }
    }

    let coherent_access = match machine.l1_lookup(core, block, write, now) {
        L1LookupResult::Hit { cycles: c, nc } => {
            cycles += c;
            !nc
        }
        L1LookupResult::Miss => {
            let nc = match mode {
                CoherenceMode::FullCoh => false,
                CoherenceMode::PageTable | CoherenceMode::TlbClass => page_private,
                CoherenceMode::Raccd => {
                    // The NCRT consultation delays every private-cache miss
                    // (§V-C studies this latency).
                    cycles += cfg.lat.ncrt;
                    ncrt.lookup(paddr)
                }
            };
            cycles += machine.miss_fill_smt(core, tid, block, write, nc, now);
            !nc
        }
    };
    census.record(block, coherent_access);
    machine.stats.refs_processed += 1;
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use raccd_mem::addr::VRange;
    use raccd_runtime::{Dep, ProgramBuilder};

    /// A small two-phase stencil-like program: 16 writer tasks, then 16
    /// reader tasks each consuming a 3-row neighbourhood. The cross-row
    /// dependences make rows migrate between cores under the dynamic FIFO
    /// scheduler — the temporarily-private pattern of §II-B.
    fn two_phase_program() -> Program {
        let mut b = ProgramBuilder::new();
        let n_rows = 16u64;
        let row_bytes = 4096u64;
        let data = b.alloc("data", n_rows * row_bytes);
        let row_range = move |i: u64| VRange::new(data.start.offset(i * row_bytes), row_bytes);
        for i in 0..n_rows {
            let row = row_range(i);
            b.task("write", vec![Dep::output(row)], move |ctx| {
                for w in 0..row_bytes / 8 {
                    ctx.write_u64(row.start.offset(w * 8), i * 1000 + w);
                }
            });
        }
        for i in 0..n_rows {
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(n_rows - 1);
            let mut deps: Vec<Dep> = (lo..=hi).map(|j| Dep::input(row_range(j))).collect();
            let sum_out = b.alloc(&format!("sum{i}"), 8);
            deps.push(Dep::output(sum_out));
            b.task("read", deps, move |ctx| {
                let mut s = 0u64;
                for j in lo..=hi {
                    let row = row_range(j);
                    for w in 0..row_bytes / 8 {
                        s = s.wrapping_add(ctx.read_u64(row.start.offset(w * 8)));
                    }
                }
                ctx.write_u64(sum_out.start, s);
            });
        }
        b.finish()
    }

    fn run(mode: CoherenceMode) -> DriverOutput {
        run_program(MachineConfig::scaled(), mode, two_phase_program())
    }

    #[test]
    fn all_modes_complete_and_agree_functionally() {
        // Reader 0 sums rows 0 and 1: Σ_{j∈{0,1}} Σ_w (j·1000 + w).
        let per_row: u64 = (0..4096 / 8).sum();
        let expected = per_row + (per_row + 512 * 1000);
        for mode in CoherenceMode::ALL {
            let out = run(mode);
            assert_eq!(out.tasks, 32, "{mode}: all tasks executed");
            assert!(out.stats.cycles > 0);
            let sum_addr = out.mem.allocations()[1].1.start;
            assert_eq!(
                out.mem.read_u64(sum_addr),
                expected,
                "{mode}: functional result"
            );
        }
    }

    #[test]
    fn raccd_uses_fewer_directory_accesses() {
        let full = run(CoherenceMode::FullCoh);
        let raccd = run(CoherenceMode::Raccd);
        assert!(
            raccd.stats.dir_accesses < full.stats.dir_accesses / 2,
            "RaCCD {} vs FullCoh {}",
            raccd.stats.dir_accesses,
            full.stats.dir_accesses
        );
    }

    #[test]
    fn raccd_census_beats_pt_on_temporarily_private_data() {
        // The FIFO scheduler migrates rows between cores across the two
        // phases, so PT classifies them shared while RaCCD keeps them
        // non-coherent (Figure 2's CG/Gauss/Jacobi effect).
        let ptr = run(CoherenceMode::PageTable);
        let rcd = run(CoherenceMode::Raccd);
        let pt_pct = ptr.census.summary().noncoherent_pct();
        let rc_pct = rcd.census.summary().noncoherent_pct();
        assert!(
            rc_pct > pt_pct,
            "RaCCD {rc_pct:.1}% should exceed PT {pt_pct:.1}%"
        );
        assert!(rc_pct > 50.0, "most blocks are task data: {rc_pct:.1}%");
    }

    #[test]
    fn fullcoh_census_is_all_coherent() {
        let out = run(CoherenceMode::FullCoh);
        assert_eq!(out.census.summary().noncoherent_blocks, 0);
    }

    #[test]
    fn raccd_pays_register_and_invalidate() {
        let out = run(CoherenceMode::Raccd);
        assert!(out.stats.register_cycles > 0);
        assert!(out.stats.invalidate_cycles > 0);
        assert!(out.stats.nc_lines_flushed > 0);
    }

    #[test]
    fn pt_sees_transitions() {
        let out = run(CoherenceMode::PageTable);
        assert!(
            out.stats.pt_shared_transitions > 0,
            "two-phase data must migrate"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(CoherenceMode::Raccd);
        let b = run(CoherenceMode::Raccd);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.dir_accesses, b.stats.dir_accesses);
        assert_eq!(a.stats.noc_traffic, b.stats.noc_traffic);
        assert_eq!(a.stats.refs_processed, b.stats.refs_processed);
    }

    fn mem_words(out: &DriverOutput) -> Vec<u64> {
        out.mem
            .allocations()
            .iter()
            .flat_map(|(_, r)| (0..r.len / 8).map(|w| out.mem.read_u64(r.start.offset(w * 8))))
            .collect()
    }

    #[test]
    fn faulty_run_recovers_bit_identical_to_fault_free_twin() {
        let clean = run(CoherenceMode::Raccd);
        let plan = FaultPlan {
            seed: 42,
            drop: 0.02,
            corrupt: 0.01,
            delay: 0.02,
            ..FaultPlan::default()
        };
        let faulty = run_program_faulty(
            MachineConfig::scaled(),
            CoherenceMode::Raccd,
            two_phase_program(),
            plan,
            None,
        );
        let report = faulty.fault.expect("plane attached");
        assert!(report.recovered(), "modest rates recover: {report:?}");
        assert!(report.stats.injected > 0, "faults were actually injected");
        assert_eq!(faulty.tasks, clean.tasks);
        assert_eq!(mem_words(&faulty), mem_words(&clean), "bit-identical");
        // Fault handling cost cycles but never correctness.
        assert!(faulty.stats.cycles >= clean.stats.cycles);
    }

    #[test]
    fn task_failures_reexecute_idempotently() {
        let clean = run(CoherenceMode::Raccd);
        let plan = FaultPlan {
            seed: 9,
            task_fail: 0.3,
            ..FaultPlan::default()
        };
        let faulty = run_program_faulty(
            MachineConfig::scaled(),
            CoherenceMode::Raccd,
            two_phase_program(),
            plan,
            None,
        );
        let report = faulty.fault.expect("plane attached");
        assert!(report.recovered(), "{report:?}");
        assert!(
            report.task_retries > 0,
            "30% task-fail must trigger retries"
        );
        // The RaCCD idempotence argument: re-executed tasks leave memory
        // exactly as a fault-free run would.
        assert_eq!(mem_words(&faulty), mem_words(&clean));
        assert_eq!(faulty.tasks, clean.tasks);
    }

    #[test]
    fn exhausted_task_budget_is_detected() {
        let plan = FaultPlan {
            seed: 1,
            task_fail: 1.0,
            task_retry_budget: 2,
            ..FaultPlan::default()
        };
        let out = run_program_faulty(
            MachineConfig::scaled(),
            CoherenceMode::Raccd,
            two_phase_program(),
            plan,
            None,
        );
        let report = out.fault.expect("plane attached");
        assert!(
            matches!(report.detected, Some(DetectReason::TaskRetryBudget { .. })),
            "certain task failure must exhaust the budget: {report:?}"
        );
        assert!(out.tasks < 32, "the run aborted early");
    }

    #[test]
    fn exhausted_message_budget_is_detected() {
        let plan = FaultPlan {
            seed: 2,
            drop: 1.0,
            retry_budget: 2,
            ..FaultPlan::default()
        };
        let out = run_program_faulty(
            MachineConfig::scaled(),
            CoherenceMode::Raccd,
            two_phase_program(),
            plan,
            None,
        );
        let report = out.fault.expect("plane attached");
        assert_eq!(report.detected, Some(DetectReason::MsgRetryBudget));
        assert!(report.stats.budget_exhausted > 0);
    }

    #[test]
    fn straggler_beyond_watchdog_is_detected() {
        let plan = FaultPlan {
            seed: 5,
            straggle: 1.0,
            straggle_cycles: 500_000,
            watchdog_cycles: 100_000,
            ..FaultPlan::default()
        };
        let out = run_program_faulty(
            MachineConfig::scaled(),
            CoherenceMode::Raccd,
            two_phase_program(),
            plan,
            None,
        );
        let report = out.fault.expect("plane attached");
        assert!(
            matches!(report.detected, Some(DetectReason::Watchdog { .. })),
            "hung simulation must trip the watchdog: {report:?}"
        );
        assert!(out.stats.watchdog_fires > 0);
    }

    #[test]
    fn sustained_storm_degrades_to_full_coherence() {
        let clean = run(CoherenceMode::Raccd);
        let plan = FaultPlan {
            seed: 8,
            storm: 0.9,
            storm_len: 100_000,
            degrade_window: 1_000_000,
            degrade_overflows: 4,
            ..FaultPlan::default()
        };
        let out = run_program_faulty(
            MachineConfig::scaled(),
            CoherenceMode::Raccd,
            two_phase_program(),
            plan,
            None,
        );
        let report = out.fault.expect("plane attached");
        assert!(report.degraded, "sustained NCRT pressure must downgrade");
        assert!(report.recovered(), "degradation is graceful: {report:?}");
        assert_eq!(out.stats.mode_downgrades, 1, "downgrade latches once");
        assert_eq!(out.tasks, 32, "the run still completes");
        assert_eq!(mem_words(&out), mem_words(&clean), "results unchanged");
    }

    #[test]
    fn zero_rate_plan_matches_plain_run_exactly() {
        let clean = run(CoherenceMode::Raccd);
        let idle = run_program_faulty(
            MachineConfig::scaled(),
            CoherenceMode::Raccd,
            two_phase_program(),
            FaultPlan::default(),
            None,
        );
        assert_eq!(idle.stats, clean.stats, "zero-fault config is neutral");
        assert_eq!(mem_words(&idle), mem_words(&clean));
        let report = idle.fault.expect("plane attached");
        assert_eq!(report.stats.injected, 0);
    }

    #[test]
    fn reduced_directory_hurts_fullcoh_more_than_raccd() {
        let cfg_small = MachineConfig::scaled().with_dir_ratio(64);
        let full_1 = run(CoherenceMode::FullCoh).stats.cycles as f64;
        let raccd_1 = run(CoherenceMode::Raccd).stats.cycles as f64;
        let full_64 = run_program(cfg_small, CoherenceMode::FullCoh, two_phase_program())
            .stats
            .cycles as f64;
        let raccd_64 = run_program(cfg_small, CoherenceMode::Raccd, two_phase_program())
            .stats
            .cycles as f64;
        let full_slowdown = full_64 / full_1;
        let raccd_slowdown = raccd_64 / raccd_1;
        assert!(
            raccd_slowdown < full_slowdown,
            "RaCCD {raccd_slowdown:.3} vs FullCoh {full_slowdown:.3}"
        );
    }
}
