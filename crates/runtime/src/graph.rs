//! Task Dependence Graph construction and completion wake-up.
//!
//! Tasks are inserted in program order. For every annotated range we track,
//! at cache-block granularity, the last writer task and the readers since
//! that write — the same information Nanos++ derives from its region maps.
//! Edges are the usual RAW / WAR / WAW dependences. "Only when all the
//! dependences of a task have been satisfied does a task move from created,
//! to ready" (§II-C).

use crate::region::Dep;
use crate::task::TaskBody;
use raccd_mem::BLOCK_SHIFT;
use std::collections::HashMap;

/// Index of a task in its graph.
pub type TaskId = usize;

/// Per-block dependence tracking during graph construction.
#[derive(Default)]
struct BlockTrack {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

struct TaskNode {
    name: String,
    deps: Vec<Dep>,
    body: Option<TaskBody>,
    dependents: Vec<TaskId>,
    /// Unsatisfied incoming edges.
    indegree: usize,
}

/// The Task Dependence Graph: a DAG whose "nodes represent tasks and the
/// edges are data dependences between tasks" (§II-C).
///
/// ```
/// use raccd_runtime::{Dep, TaskGraph};
/// use raccd_mem::{VAddr, addr::VRange};
/// let mut g = TaskGraph::new();
/// let data = VRange::new(VAddr(0x40_0000), 4096);
/// let producer = g.add_task("write", vec![Dep::output(data)], Box::new(|_| {}));
/// let consumer = g.add_task("read", vec![Dep::input(data)], Box::new(|_| {}));
/// assert_eq!(g.initially_ready(), vec![producer]);
/// assert_eq!(g.complete(producer), vec![consumer]); // RAW edge satisfied
/// ```
#[derive(Default)]
pub struct TaskGraph {
    tasks: Vec<TaskNode>,
    blocks: HashMap<u64, BlockTrack>,
    edges: usize,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Insert a task with its dependence annotations and body. Edges to
    /// earlier tasks are discovered here. Returns the new task's id.
    pub fn add_task(&mut self, name: &str, deps: Vec<Dep>, body: TaskBody) -> TaskId {
        let id = self.tasks.len();
        let mut preds: Vec<TaskId> = Vec::new();

        for dep in &deps {
            let first = dep.range.start.0 >> BLOCK_SHIFT;
            let last = if dep.range.len == 0 {
                first
            } else {
                (dep.range.start.0 + dep.range.len - 1) >> BLOCK_SHIFT
            };
            for b in first..=last {
                let track = self.blocks.entry(b).or_default();
                if dep.dir.reads() {
                    if let Some(w) = track.last_writer {
                        preds.push(w); // RAW
                    }
                }
                if dep.dir.writes() {
                    if let Some(w) = track.last_writer {
                        preds.push(w); // WAW
                    }
                    preds.extend(track.readers_since_write.iter().copied()); // WAR
                    track.last_writer = Some(id);
                    track.readers_since_write.clear();
                }
                if dep.dir.reads() && !dep.dir.writes() {
                    track.readers_since_write.push(id);
                }
            }
        }

        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != id);

        let indegree = preds.len();
        for p in &preds {
            self.tasks[*p].dependents.push(id);
        }
        self.edges += indegree;

        self.tasks.push(TaskNode {
            name: name.to_string(),
            deps,
            body: Some(body),
            dependents: Vec::new(),
            indegree,
        });
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of dependence edges discovered.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// Tasks with no unsatisfied dependences at creation (the initial ready
    /// set).
    pub fn initially_ready(&self) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|&t| self.tasks[t].indegree == 0)
            .collect()
    }

    /// Name of a task.
    pub fn name(&self, id: TaskId) -> &str {
        &self.tasks[id].name
    }

    /// Dependence annotations of a task (what `raccd_register` will walk).
    pub fn deps(&self, id: TaskId) -> &[Dep] {
        &self.tasks[id].deps
    }

    /// Number of dependent tasks (wake-up phase cost driver).
    pub fn dependent_count(&self, id: TaskId) -> usize {
        self.tasks[id].dependents.len()
    }

    /// Direct dependents of a task (every edge goes to a *higher* id, so
    /// critical-path depths are computable in one reverse sweep). Call
    /// before executing tasks — wake-up consumes the dependent lists.
    pub fn dependents(&self, id: TaskId) -> &[TaskId] {
        &self.tasks[id].dependents
    }

    /// Take a task's body for execution. Panics if taken twice.
    pub fn take_body(&mut self, id: TaskId) -> TaskBody {
        self.tasks[id].body.take().expect("task body already taken")
    }

    /// Insert a barrier task (OpenMP `taskwait`): it depends on every
    /// current *sink* task (tasks nothing depends on yet), so it becomes
    /// ready only when all previously created work has finished. Returns
    /// the barrier's task id; `body` runs when the barrier is reached.
    pub fn add_barrier(&mut self, name: &str, body: TaskBody) -> TaskId {
        let id = self.tasks.len();
        let preds: Vec<TaskId> = (0..self.tasks.len())
            .filter(|&t| self.tasks[t].dependents.is_empty())
            .collect();
        for &p in &preds {
            self.tasks[p].dependents.push(id);
        }
        self.edges += preds.len();
        self.tasks.push(TaskNode {
            name: name.to_string(),
            deps: Vec::new(),
            body: Some(body),
            dependents: Vec::new(),
            indegree: preds.len(),
        });
        id
    }

    /// Render the TDG in Graphviz DOT format (the right-hand side of the
    /// paper's Figure 1). Call before executing tasks — wake-up consumes
    /// the dependent lists.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph tdg {\n  rankdir=TB;\n");
        for (id, node) in self.tasks.iter().enumerate() {
            out.push_str(&format!("  t{id} [label=\"{}#{id}\"];\n", node.name));
        }
        for (id, node) in self.tasks.iter().enumerate() {
            for &d in &node.dependents {
                out.push_str(&format!("  t{id} -> t{d};\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Wake-up phase: mark `id` complete and return dependents that became
    /// ready.
    pub fn complete(&mut self, id: TaskId) -> Vec<TaskId> {
        let dependents = std::mem::take(&mut self.tasks[id].dependents);
        let mut ready = Vec::new();
        for d in dependents {
            let node = &mut self.tasks[d];
            node.indegree -= 1;
            if node.indegree == 0 {
                ready.push(d);
            }
        }
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Dep;
    use raccd_mem::{addr::VRange, VAddr};

    fn r(start: u64, len: u64) -> VRange {
        VRange::new(VAddr(start), len)
    }

    fn nop() -> TaskBody {
        Box::new(|_| {})
    }

    #[test]
    fn raw_dependence() {
        let mut g = TaskGraph::new();
        let t0 = g.add_task("w", vec![Dep::output(r(0x1000, 64))], nop());
        let t1 = g.add_task("r", vec![Dep::input(r(0x1000, 64))], nop());
        assert_eq!(g.edges(), 1);
        assert_eq!(g.initially_ready(), vec![t0]);
        assert_eq!(g.complete(t0), vec![t1]);
    }

    #[test]
    fn war_dependence() {
        let mut g = TaskGraph::new();
        let _w0 = g.add_task("w0", vec![Dep::output(r(0x1000, 64))], nop());
        let t_r = g.add_task("r", vec![Dep::input(r(0x1000, 64))], nop());
        let t_w = g.add_task("w1", vec![Dep::output(r(0x1000, 64))], nop());
        // w1 depends on both w0 (WAW) and r (WAR).
        assert_eq!(g.edges(), 1 + 2);
        assert!(!g.initially_ready().contains(&t_w));
        let _ = g.complete(0);
        // r becomes ready, w1 still blocked by r.
        assert_eq!(g.complete(t_r), vec![t_w]);
    }

    #[test]
    fn independent_tasks_all_ready() {
        let mut g = TaskGraph::new();
        for i in 0..5u64 {
            g.add_task("t", vec![Dep::output(r(0x1000 + i * 4096, 64))], nop());
        }
        assert_eq!(g.initially_ready().len(), 5);
        assert_eq!(g.edges(), 0);
    }

    #[test]
    fn unannotated_tasks_are_independent() {
        // JPEG's tasks carry no annotations (§II-D) — all immediately ready.
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            g.add_task("jpeg", vec![], nop());
        }
        assert_eq!(g.initially_ready().len(), 4);
    }

    #[test]
    fn readers_do_not_depend_on_each_other() {
        let mut g = TaskGraph::new();
        let w = g.add_task("w", vec![Dep::output(r(0x1000, 128))], nop());
        let r1 = g.add_task("r1", vec![Dep::input(r(0x1000, 64))], nop());
        let r2 = g.add_task("r2", vec![Dep::input(r(0x1040, 64))], nop());
        assert_eq!(g.edges(), 2);
        let ready = g.complete(w);
        assert_eq!(ready, vec![r1, r2]);
    }

    #[test]
    fn duplicate_edges_are_deduped() {
        let mut g = TaskGraph::new();
        let _w = g.add_task("w", vec![Dep::output(r(0x1000, 4096))], nop());
        // Reader overlaps many blocks of the same writer — still one edge.
        let _r = g.add_task("r", vec![Dep::input(r(0x1000, 4096))], nop());
        assert_eq!(g.edges(), 1);
    }

    #[test]
    fn inout_chains_serialize() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![Dep::inout(r(0x1000, 64))], nop());
        let b = g.add_task("b", vec![Dep::inout(r(0x1000, 64))], nop());
        let c = g.add_task("c", vec![Dep::inout(r(0x1000, 64))], nop());
        assert_eq!(g.initially_ready(), vec![a]);
        assert_eq!(g.complete(a), vec![b]);
        assert_eq!(g.complete(b), vec![c]);
        assert_eq!(g.dependent_count(c), 0);
    }

    #[test]
    fn cholesky_shape_dependences() {
        // Mini 2×2-block Cholesky from Figure 1: potrf(0,0); trsm(1,0);
        // syrk(1,1); potrf(1,1).
        let blk = 4096u64;
        let a = |i: u64, j: u64| r(0x10_0000 + (i * 2 + j) * blk, blk);
        let mut g = TaskGraph::new();
        let potrf0 = g.add_task("potrf", vec![Dep::inout(a(0, 0))], nop());
        let trsm = g.add_task(
            "trsm",
            vec![Dep::input(a(0, 0)), Dep::inout(a(1, 0))],
            nop(),
        );
        let syrk = g.add_task(
            "syrk",
            vec![Dep::input(a(1, 0)), Dep::inout(a(1, 1))],
            nop(),
        );
        let potrf1 = g.add_task("potrf", vec![Dep::inout(a(1, 1))], nop());
        // Chain: potrf0 → trsm → syrk → potrf1.
        assert_eq!(g.initially_ready(), vec![potrf0]);
        assert_eq!(g.complete(potrf0), vec![trsm]);
        assert_eq!(g.complete(trsm), vec![syrk]);
        assert_eq!(g.complete(syrk), vec![potrf1]);
    }

    #[test]
    fn barrier_waits_for_all_sinks() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", vec![Dep::output(r(0x1000, 64))], nop());
        let b = g.add_task("b", vec![Dep::output(r(0x2000, 64))], nop());
        let c = g.add_task("c", vec![Dep::input(r(0x1000, 64))], nop());
        let bar = g.add_barrier("barrier", nop());
        // Sinks at barrier time: b and c (a has dependent c).
        assert_eq!(g.initially_ready(), vec![a, b]);
        assert!(g.complete(a).contains(&c));
        assert!(g.complete(b).is_empty(), "barrier still waits for c");
        assert_eq!(g.complete(c), vec![bar]);
    }

    #[test]
    fn barrier_on_empty_graph_is_ready() {
        let mut g = TaskGraph::new();
        let bar = g.add_barrier("barrier", nop());
        assert_eq!(g.initially_ready(), vec![bar]);
    }

    #[test]
    fn tasks_after_barrier_depend_transitively() {
        let mut g = TaskGraph::new();
        let _a = g.add_task("a", vec![Dep::output(r(0x1000, 64))], nop());
        let bar = g.add_barrier("barrier", nop());
        // A post-barrier task touching fresh data is independent of the
        // barrier in the dependence map — callers serialise via data or by
        // depending on barrier-produced ranges. Verify the barrier itself
        // drains normally.
        assert_eq!(g.complete(0), vec![bar]);
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let mut g = TaskGraph::new();
        let _a = g.add_task("w", vec![Dep::output(r(0x1000, 64))], nop());
        let _b = g.add_task("r", vec![Dep::input(r(0x1000, 64))], nop());
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph tdg {"));
        assert!(dot.contains("t0 [label=\"w#0\"]"));
        assert!(dot.contains("t1 [label=\"r#1\"]"));
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn body_taken_once() {
        let mut g = TaskGraph::new();
        let t = g.add_task("t", vec![], nop());
        let _ = g.take_body(t);
        let _ = g.take_body(t);
    }
}
