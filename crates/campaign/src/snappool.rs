//! Shared warm-start snapshot pool.
//!
//! Every seed of a configuration shares the same warm-up prefix (the fault
//! RNG is reseeded only *at* the warm-up boundary), so the campaign pays
//! each configuration's warm-up exactly once: the first worker to need it
//! simulates the warm-up, snapshots, and parks the image here; later
//! seeds restore from the shared image for nearly free (`raccd-snap`
//! round-trips are byte-identical by the snapshot e2e suite).

use raccd_snap::Snapshot;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Pool hit/miss counters (campaign report material).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapPoolStats {
    /// Restores served from a pooled image.
    pub hits: u64,
    /// Warm-ups simulated and pooled.
    pub misses: u64,
}

struct Inner {
    images: HashMap<u64, Arc<Snapshot>>,
    stats: SnapPoolStats,
}

/// Concurrent map from configuration fingerprint to its post-warm-up
/// snapshot.
pub struct SnapshotPool {
    inner: Mutex<Inner>,
}

impl Default for SnapshotPool {
    fn default() -> Self {
        SnapshotPool {
            inner: Mutex::new(Inner {
                images: HashMap::new(),
                stats: SnapPoolStats::default(),
            }),
        }
    }
}

impl SnapshotPool {
    /// Fetch the pooled image for `fingerprint`, or build it with `make`
    /// and pool it. `make` runs outside the lock, so concurrent misses on
    /// *different* fingerprints warm up in parallel; a duplicate build of
    /// the same fingerprint is possible under a race but harmless (images
    /// are deterministic — first insert wins, and the loser counts a hit).
    pub fn get_or_build(&self, fingerprint: u64, make: impl FnOnce() -> Snapshot) -> Arc<Snapshot> {
        if let Some(img) = self.lookup(fingerprint) {
            return img;
        }
        let built = Arc::new(make());
        let mut inner = self.lock();
        if let Some(existing) = inner.images.get(&fingerprint).cloned() {
            inner.stats.hits += 1;
            return existing;
        }
        inner.stats.misses += 1;
        inner.images.insert(fingerprint, Arc::clone(&built));
        built
    }

    fn lookup(&self, fingerprint: u64) -> Option<Arc<Snapshot>> {
        let mut inner = self.lock();
        let img = inner.images.get(&fingerprint).cloned();
        if img.is_some() {
            inner.stats.hits += 1;
        }
        img
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> SnapPoolStats {
        self.lock().stats
    }

    /// Pooled images.
    pub fn len(&self) -> usize {
        self.lock().images.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_then_hits() {
        let pool = SnapshotPool::default();
        let mut builds = 0;
        for _ in 0..5 {
            pool.get_or_build(42, || {
                builds += 1;
                Snapshot::new()
            });
        }
        assert_eq!(builds, 1);
        let st = pool.stats();
        assert_eq!(st.misses, 1);
        assert_eq!(st.hits, 4);
        assert_eq!(pool.len(), 1);
    }
}
