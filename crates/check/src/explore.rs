//! Exhaustive small-state protocol exploration.
//!
//! Breadth-first enumeration of **all** interleavings of a small alphabet
//! of operations (a few cores × a few blocks × {coherent read, coherent
//! write, NC read, NC write} plus `raccd_invalidate` and page flushes)
//! against the real MESI + RaCCD machine, with the shadow checker
//! asserting every invariant after every operation in every reachable
//! state.
//!
//! States are deduplicated by the shadow checker's canonical fingerprint
//! (`ShadowChecker::state_key`): it covers the L1/LLC/memory version
//! structure (as dense ranks), MESI states, NC and stale bits, directory
//! presence/owner/holders and per-bank capacities — everything that
//! determines future protocol behaviour — while excluding wall-clock time
//! and replacement metadata (the explored configurations are sized so no
//! pseudo-LRU decision is ever exercised). Equal fingerprints therefore
//! have identical continuations, and the BFS reaches a **closed** state
//! space: when the frontier empties, every reachable protocol state has
//! been visited and checked.
//!
//! [`Machine`](raccd_sim::Machine) is deliberately not `Clone` (it owns
//! telemetry hooks), so expansion replays each frontier prefix from
//! scratch — cheap at these depths, and itself a continuous test of
//! replay determinism: a prefix that was clean when discovered must be
//! clean again on re-execution.

use crate::harness::CheckedMachine;
use crate::trace::{write_counterexample, TraceOp};
use raccd_mem::{BLOCK_SHIFT, PAGE_SHIFT};
use raccd_sim::{MachineConfig, Violation};
use std::collections::{HashSet, VecDeque};

/// What to explore.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Machine configuration (keep caches large enough that the block set
    /// never evicts by capacity, so replacement state stays trivial).
    pub cfg: MachineConfig,
    /// Cores allowed to issue operations.
    pub cores: Vec<usize>,
    /// Physical block numbers the cores touch.
    pub blocks: Vec<u64>,
    /// Include per-core `raccd_invalidate` (NC flush) in the alphabet.
    pub flush_nc: bool,
    /// Include PT-style page flushes of the blocks' pages in the alphabet.
    pub flush_pages: bool,
    /// Stop enqueueing continuations beyond this many operations. A full
    /// closure needs this above the state-graph diameter; [`ExploreResult::
    /// exhausted`] reports whether the bound was ever the limiter.
    pub max_depth: usize,
    /// Abort after this many distinct states (safety valve).
    pub max_states: usize,
}

impl ExploreConfig {
    /// Every operation a step may take, in a fixed deterministic order.
    fn alphabet(&self) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        for &core in &self.cores {
            for &block in &self.blocks {
                for write in [false, true] {
                    for nc in [false, true] {
                        ops.push(TraceOp::Access {
                            core,
                            block,
                            write,
                            nc,
                        });
                    }
                }
            }
            if self.flush_nc {
                ops.push(TraceOp::FlushNc { core });
            }
            if self.flush_pages {
                let mut pages: Vec<u64> = self
                    .blocks
                    .iter()
                    .map(|b| (b << BLOCK_SHIFT) >> PAGE_SHIFT)
                    .collect();
                pages.sort_unstable();
                pages.dedup();
                for page in pages {
                    ops.push(TraceOp::FlushPage { core, page });
                }
            }
        }
        ops
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct ExploreResult {
    /// Distinct protocol states reached (including the initial state).
    pub states: usize,
    /// Total operations executed across all replays (work measure).
    pub ops_applied: u64,
    /// `true` when the frontier emptied before hitting `max_depth` /
    /// `max_states`: the state space is fully closed — every reachable
    /// state was visited and every invariant held in all of them.
    pub exhausted: bool,
    /// Invariant violations, each with the full operation sequence that
    /// produced it (already written to the counterexample dump directory).
    pub violations: Vec<(Vec<TraceOp>, Violation)>,
}

/// Run the breadth-first exploration.
pub fn explore(ec: &ExploreConfig) -> ExploreResult {
    let alphabet = ec.alphabet();
    let mut seen: HashSet<String> = HashSet::new();
    let mut frontier: VecDeque<Vec<TraceOp>> = VecDeque::new();
    let mut result = ExploreResult {
        states: 0,
        ops_applied: 0,
        exhausted: true,
        violations: Vec::new(),
    };

    let initial = CheckedMachine::new(ec.cfg);
    seen.insert(initial.state_key());
    result.states = 1;
    frontier.push_back(Vec::new());

    while let Some(prefix) = frontier.pop_front() {
        if prefix.len() >= ec.max_depth {
            result.exhausted = false;
            continue;
        }
        for &op in &alphabet {
            // Machines are not Clone: rebuild the (known-clean) prefix.
            let mut m = CheckedMachine::new(ec.cfg);
            for &p in &prefix {
                m.apply(p);
            }
            m.apply(op);
            result.ops_applied += prefix.len() as u64 + 1;
            let violations = m.drain_violations();
            if !violations.is_empty() {
                let mut seq = prefix.clone();
                seq.push(op);
                let _ = write_counterexample(&ec.cfg, &seq, "explore", &violations);
                for v in violations {
                    result.violations.push((seq.clone(), v));
                }
                continue; // don't expand past a broken state
            }
            if seen.insert(m.state_key()) {
                result.states += 1;
                if result.states >= ec.max_states {
                    result.exhausted = false;
                    return result;
                }
                let mut seq = prefix.clone();
                seq.push(op);
                frontier.push_back(seq);
            }
        }
    }
    result
}
