//! Property tests of [`DirectoryBank`] allocation, deallocation and ADR
//! resizing against a flat reference model.
//!
//! The mirror is a `HashMap<block, holders>`: every `allocate` adds, every
//! `deallocate` removes, and every eviction the bank reports removes its
//! victim. The properties:
//!
//! 1. occupancy never exceeds capacity, at every step;
//! 2. **every** eviction is surfaced — the bank's resident set equals the
//!    mirror exactly after any operation sequence (a silently dropped
//!    entry would orphan LLC lines and sharers);
//! 3. the powered-capacity integral is monotone non-decreasing in `now`
//!    and grows at exactly `capacity` entry·cycles per cycle between
//!    reconfigurations.

use proptest::prelude::*;
use proptest::sample;
use raccd_mem::BlockAddr;
use raccd_protocol::directory::{DirEntry, DirectoryBank};
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
enum DirOp {
    /// Allocate `block` with `holder` recorded as a sharer.
    Alloc(u64, usize),
    /// Deallocate `block`.
    Dealloc(u64),
    /// Resize to `sets` sets (× the bank's associativity in entries).
    Resize(usize),
}

fn op_strategy(blocks: u64) -> impl Strategy<Value = DirOp> {
    prop_oneof![
        6 => (0..blocks, 0usize..16).prop_map(|(b, c)| DirOp::Alloc(b, c)),
        2 => (0..blocks).prop_map(DirOp::Dealloc),
        1 => sample::select(vec![1usize, 2, 4, 8, 16]).prop_map(DirOp::Resize),
    ]
}

/// Drive a bank and the flat mirror through one op, checking the
/// occupancy bound and eviction surfacing at every step. `Resize` sets
/// counts are scaled by `ways` so every size is legal for the bank.
fn step(
    bank: &mut DirectoryBank,
    mirror: &mut HashMap<u64, u64>,
    op: DirOp,
    now: u64,
    ways: usize,
) {
    match op {
        DirOp::Alloc(b, core) => {
            let block = BlockAddr(b);
            if bank.probe(block).is_some() {
                // Already resident: protocol-level sharer update only.
                bank.lookup(block).expect("probed").record_gets(core);
                mirror.insert(b, bank.probe(block).expect("probed").all_holders());
            } else {
                let mut e = DirEntry::uncached();
                e.record_gets(core);
                let holders = e.all_holders();
                if let Some(ev) = bank.allocate(block, now, e) {
                    let gone = mirror.remove(&ev.block.0);
                    assert!(
                        gone.is_some(),
                        "evicted {:?} was not in the reference model",
                        ev.block
                    );
                    assert_eq!(
                        gone.unwrap(),
                        ev.entry.all_holders(),
                        "eviction surfaced wrong holder set"
                    );
                }
                mirror.insert(b, holders);
            }
        }
        DirOp::Dealloc(b) => {
            let got = bank.deallocate(BlockAddr(b), now);
            assert_eq!(got.is_some(), mirror.remove(&b).is_some());
        }
        DirOp::Resize(sets) => {
            for ev in bank.resize(sets * ways, now) {
                assert!(
                    mirror.remove(&ev.block.0).is_some(),
                    "resize dropped unknown block {:?}",
                    ev.block
                );
            }
        }
    }
    assert!(
        bank.occupancy() <= bank.capacity(),
        "occupancy {} > capacity {}",
        bank.occupancy(),
        bank.capacity()
    );
}

/// The bank's resident set must equal the mirror exactly, holders
/// included.
fn assert_mirror(bank: &DirectoryBank, mirror: &HashMap<u64, u64>) {
    let resident: HashMap<u64, u64> = bank.iter().map(|(b, e)| (b.0, e.all_holders())).collect();
    assert_eq!(resident, *mirror);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random alloc/dealloc/resize sequences: no entry appears or vanishes
    /// without being surfaced, under both associativities the machine uses.
    #[test]
    fn bank_matches_flat_model(
        ops in proptest::collection::vec(op_strategy(64), 1..200),
        ways in sample::select(vec![1usize, 4]),
    ) {
        let mut bank = DirectoryBank::new(8 * ways, ways, 0);
        let mut mirror = HashMap::new();
        for (i, &op) in ops.iter().enumerate() {
            step(&mut bank, &mut mirror, op, i as u64 * 10, ways);
            assert_mirror(&bank, &mirror);
        }
    }

    /// The capacity integral is monotone in `now` and advances by exactly
    /// `capacity` per cycle while the size is stable.
    #[test]
    fn capacity_integral_monotone(
        ops in proptest::collection::vec(op_strategy(32), 1..100),
        stride in 1u64..50,
    ) {
        let mut bank = DirectoryBank::new(16, 2, 0);
        let mut mirror = HashMap::new();
        let mut last = 0u128;
        let mut now = 0u64;
        for &op in &ops {
            now += stride;
            let int_before = bank.capacity_integral(now);
            assert!(int_before >= last, "integral regressed");
            step(&mut bank, &mut mirror, op, now, 2);
            // Querying again at the same instant adds nothing…
            let int_after = bank.capacity_integral(now);
            assert_eq!(int_after, int_before, "tick at same now must be idempotent");
            // …and advancing by dt adds dt × current capacity.
            let dt = 7;
            now += dt;
            let expect = int_after + dt as u128 * bank.capacity() as u128;
            assert_eq!(bank.capacity_integral(now), expect);
            last = expect;
        }
    }

    /// Occupancy bound specifically across shrinks to the minimum size.
    #[test]
    fn shrink_to_minimum_never_overflows(
        blocks in proptest::collection::vec(0u64..64, 1..40),
    ) {
        let mut bank = DirectoryBank::new(16, 1, 0);
        let mut mirror = HashMap::new();
        for (i, &b) in blocks.iter().enumerate() {
            step(&mut bank, &mut mirror, DirOp::Alloc(b, i % 8), i as u64, 1);
        }
        for (i, &sets) in [8usize, 4, 2, 1].iter().enumerate() {
            step(&mut bank, &mut mirror, DirOp::Resize(sets), 1000 + i as u64, 1);
            assert_mirror(&bank, &mirror);
            assert!(bank.capacity() == sets);
        }
    }
}
