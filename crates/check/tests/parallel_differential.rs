//! Epoch-parallel vs serial differential testing.
//!
//! The parallel engine's contract is **bit-identity**: for any workload,
//! coherence mode, thread count and fault plan, the epoch-parallel engine
//! must produce exactly the serial engine's results — same `Stats`, same
//! shadow-checker `state_key` (the canonical fingerprint of all
//! protocol-visible state), and the same telemetry event stream in the
//! same order. This suite runs that cross product with the shadow oracle
//! attached on both sides; any divergence dumps a replayable
//! counterexample recipe to `$RACCD_CHECK_DUMP_DIR` (or
//! `target/raccd-check-counterexamples/`).

use raccd_core::{CoherenceMode, Driver, DriverOutput, Engine, Recorder};
use raccd_runtime::Workload;
use raccd_sim::{FaultPlan, MachineConfig};
use raccd_workloads::{cholesky::Cholesky, histo::Histo, jacobi::Jacobi, Scale};
use std::path::PathBuf;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// `(name, spec)` fault plans exercised on top of the fault-free runs.
/// Injections land on the serial remainder of every turn (speculated hits
/// never reach the NoC in either engine), so the RNG roll sequence — and
/// therefore every recovery path — must line up exactly.
const FAULT_SPECS: [(&str, &str); 2] = [
    ("noc", "seed=42;drop=0.01;dup=0.005;delay=0.02:32"),
    (
        "storm",
        "seed=7;storm=0.002:5000;taskfail=0.05;dirloss=0.001",
    ),
];

fn quad_core() -> MachineConfig {
    let mut cfg = MachineConfig::scaled().with_shadow_check(true);
    cfg.ncores = 4;
    cfg.mesh_k = 2;
    cfg
}

fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Jacobi {
            n: 24,
            iters: 2,
            blocks: 4,
            ..Jacobi::new(Scale::Test)
        }),
        Box::new(Histo::new(Scale::Test)),
        Box::new(Cholesky {
            tiles: 3,
            t: 6,
            seed: 5,
        }),
    ]
}

struct EngineRun {
    key: Option<String>,
    out: DriverOutput,
    rec: Recorder,
}

fn run_engine(
    w: &dyn Workload,
    cfg: MachineConfig,
    mode: CoherenceMode,
    engine: Engine,
    plan: Option<FaultPlan>,
) -> EngineRun {
    let mut rec = Recorder::default();
    let driver = Driver::new(cfg, mode, w.build(), plan, Some(&mut rec));
    let (key, out) = driver.finish_engine_keyed(engine, Some(&mut rec));
    EngineRun { key, out, rec }
}

fn dump_dir() -> PathBuf {
    match std::env::var_os("RACCD_CHECK_DUMP_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("target").join("raccd-check-counterexamples"),
    }
}

/// Write a replayable counterexample: the exact (workload, mode, threads,
/// fault spec) tuple — workload builders are deterministic, so the tuple
/// *is* the trace — plus where the two runs first diverged.
fn dump_counterexample(
    w: &dyn Workload,
    mode: CoherenceMode,
    threads: usize,
    fault: Option<&str>,
    detail: &str,
) -> String {
    let dir = dump_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!(
        "parallel-diff-{}-{mode}-t{threads}-{}.txt",
        w.name(),
        std::process::id()
    ));
    let text = format!(
        "# parallel-vs-serial divergence\n\
         workload = {}\nmode = {mode}\nthreads = {threads}\nfault = {}\n\
         # reproduce: cargo test -p raccd-check --test parallel_differential\n\
         # (the tuple above is the full input; workload builders are deterministic)\n\
         {detail}\n",
        w.name(),
        fault.unwrap_or("none"),
    );
    let _ = std::fs::write(&path, text);
    format!("{} (counterexample: {})", detail, path.display())
}

/// Compare a parallel run against the serial oracle; returns a divergence
/// description (already dumped) or None.
fn compare(
    w: &dyn Workload,
    mode: CoherenceMode,
    threads: usize,
    fault: Option<&str>,
    serial: &EngineRun,
    par: &EngineRun,
) -> Option<String> {
    let mut detail = String::new();
    if par.out.stats != serial.out.stats {
        detail.push_str(&format!(
            "Stats diverged:\n  serial: {:?}\n  par{threads}: {:?}\n",
            serial.out.stats, par.out.stats
        ));
    }
    if par.key != serial.key {
        detail.push_str(&format!(
            "shadow state_key diverged:\n  serial: {:?}\n  par{threads}: {:?}\n",
            serial.key, par.key
        ));
    }
    let (se, pe) = (serial.rec.events(), par.rec.events());
    if se != pe {
        let first = se
            .iter()
            .zip(pe.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(se.len().min(pe.len()));
        detail.push_str(&format!(
            "telemetry event stream diverged at index {first} \
             (serial has {} events, parallel {}):\n  serial: {:?}\n  par{threads}: {:?}\n",
            se.len(),
            pe.len(),
            se.get(first),
            pe.get(first),
        ));
    }
    if par.rec.hist_mem_latency != serial.rec.hist_mem_latency
        || par.rec.hist_bank_wait != serial.rec.hist_bank_wait
    {
        detail.push_str("latency histograms diverged\n");
    }
    if detail.is_empty() {
        return None;
    }
    Some(dump_counterexample(w, mode, threads, fault, &detail))
}

fn differential_sweep(fault: Option<&str>) {
    let cfg = quad_core();
    let mut failures = String::new();
    for w in workloads() {
        for mode in [CoherenceMode::Raccd, CoherenceMode::FullCoh] {
            let plan = fault.map(|s| FaultPlan::from_spec(s).expect("fault spec parses"));
            let serial = run_engine(w.as_ref(), cfg, mode, Engine::Serial, plan);
            assert!(
                serial.key.is_some(),
                "shadow checker must be attached (state_key missing)"
            );
            for threads in THREADS {
                let plan = fault.map(|s| FaultPlan::from_spec(s).expect("fault spec parses"));
                let par = run_engine(
                    w.as_ref(),
                    cfg,
                    mode,
                    Engine::EpochParallel { threads },
                    plan,
                );
                if let Some(msg) = compare(w.as_ref(), mode, threads, fault, &serial, &par) {
                    failures.push_str(&format!("{} under {mode}: {msg}\n", w.name()));
                }
            }
        }
    }
    assert!(failures.is_empty(), "{failures}");
}

/// Fault-free: every workload × mode × thread count matches serial
/// bit-for-bit (Stats, state_key, telemetry stream, histograms).
#[test]
fn parallel_matches_serial_fault_free() {
    differential_sweep(None);
}

/// NoC fault plan (drops, duplicates, delays): recovery paths roll the
/// same RNG sequence under both engines.
#[test]
fn parallel_matches_serial_under_noc_faults() {
    differential_sweep(Some(FAULT_SPECS[0].1));
}

/// NCRT storms, task failures and directory entry loss: retry and
/// degrade machinery must not perturb the epoch planner's determinism.
#[test]
fn parallel_matches_serial_under_storm_faults() {
    differential_sweep(Some(FAULT_SPECS[1].1));
}

/// The planner refuses PT/TLB-class modes (global classifier on every
/// reference); the parallel engine must still complete correctly there by
/// falling back to serial stepping.
#[test]
fn parallel_engine_serial_fallback_modes() {
    let cfg = quad_core();
    let w = Histo::new(Scale::Test);
    for mode in [CoherenceMode::PageTable, CoherenceMode::TlbClass] {
        let serial = run_engine(&w, cfg, mode, Engine::Serial, None);
        let par = run_engine(&w, cfg, mode, Engine::EpochParallel { threads: 4 }, None);
        assert_eq!(par.out.stats, serial.out.stats, "{mode} stats diverged");
        assert_eq!(par.key, serial.key, "{mode} state_key diverged");
    }
}

/// The differential sweep is only meaningful if epochs actually form and
/// speculated prefixes actually commit — guard against the engine silently
/// degenerating into serial stepping. The profiler's epoch sites count
/// barriers crossed and speculated references committed.
#[test]
fn parallel_engine_actually_speculates() {
    use raccd_prof::Site;
    let w = Histo::new(Scale::Test);
    let mut rec = Recorder::default();
    let mut driver = Driver::new(
        quad_core(),
        CoherenceMode::Raccd,
        w.build(),
        None,
        Some(&mut rec),
    );
    driver.attach_prof();
    let (_, out) = driver.finish_engine_keyed(Engine::EpochParallel { threads: 4 }, Some(&mut rec));
    let prof = out.prof.expect("profiler attached");
    let barrier = prof.get(Site::EpochBarrier);
    let merge = prof.get(Site::EpochMerge);
    assert!(barrier.count > 0, "no epoch ever formed");
    assert!(
        merge.units > 0,
        "epochs formed ({} barriers) but no speculated reference was ever committed",
        barrier.count
    );
}

/// Write-through private caches stop speculation at every store; the
/// prefix machinery must still be exact for the read runs between them.
#[test]
fn parallel_matches_serial_write_through() {
    let cfg = quad_core().with_write_through(true);
    let w = Jacobi {
        n: 16,
        iters: 1,
        blocks: 4,
        ..Jacobi::new(Scale::Test)
    };
    for mode in [CoherenceMode::Raccd, CoherenceMode::FullCoh] {
        let serial = run_engine(&w, cfg, mode, Engine::Serial, None);
        let par = run_engine(&w, cfg, mode, Engine::EpochParallel { threads: 2 }, None);
        assert_eq!(par.out.stats, serial.out.stats, "{mode} stats diverged");
        assert_eq!(par.key, serial.key, "{mode} state_key diverged");
        assert_eq!(
            par.rec.events(),
            serial.rec.events(),
            "{mode} event stream diverged"
        );
    }
}
