//! Divergence bisector: pinpoint the first cycle at which two runs that
//! *should* evolve identically stop agreeing.
//!
//! Both sides run with the shadow checker attached and are compared by
//! [`raccd_sim::ShadowChecker::state_key`] — the canonical fingerprint of
//! all shadow coherence state (L1 mirrors, golden memory versions, NCRT
//! mirrors, directory/LLC probes). Because simulation is forward-only,
//! plain binary search would re-simulate prefixes from scratch; instead
//! the bisector snapshots both sides at every agreeing probe and, on the
//! first disagreeing probe, *restores* the last agreeing checkpoint and
//! re-probes the window at finer granularity. Each refinement round costs
//! one restore instead of a rerun from cycle 0, so the first divergent
//! cycle is located to single-probe precision in `O(log)` rounds.
//!
//! The primary in-repo customer is the snapshot subsystem itself: a side
//! that checkpoints and immediately restores itself every interval must
//! stay bit-identical to an uninterrupted side; any `Snap` impl that
//! forgets a field shows up as a divergence at the first post-restore
//! probe, localised for free. It is equally useful for any two
//! configurations expected to be observationally identical (e.g. a
//! scheduling refactor, or a fault plan whose window never opens).
//!
//! On divergence, both sides' last-agreeing checkpoints plus a report are
//! dumped to `$RACCD_CHECK_DUMP_DIR` (or `target/raccd-check-counterexamples/`)
//! so CI can attach the counterexample as an artifact.

use crate::trace::dump_dir;
use raccd_core::{CoherenceMode, Driver};
use raccd_fault::FaultPlan;
use raccd_runtime::Program;
use raccd_sim::MachineConfig;
use raccd_snap::Snapshot;
use std::path::PathBuf;

/// One side of a bisection: how to (re)build its driver from scratch.
pub struct BisectSide<'a> {
    /// Label used in reports and dump file names.
    pub label: &'a str,
    /// Machine configuration (shadow checking is forced on).
    pub cfg: MachineConfig,
    /// Coherence mode.
    pub mode: CoherenceMode,
    /// Fault plan, if the side runs under injection.
    pub plan: Option<FaultPlan>,
    /// Deterministic program builder; called for the initial run and for
    /// every restore.
    pub make: &'a dyn Fn() -> Program,
}

impl BisectSide<'_> {
    fn fresh(&self) -> Driver {
        Driver::new(
            self.cfg.with_shadow_check(true),
            self.mode,
            (self.make)(),
            self.plan,
            None,
        )
    }

    fn revive(&self, snap: &Snapshot) -> Result<Driver, raccd_snap::SnapError> {
        Driver::restore(
            self.cfg.with_shadow_check(true),
            self.mode,
            (self.make)(),
            snap,
        )
    }
}

/// A located divergence.
#[derive(Debug)]
pub struct Divergence {
    /// First probed cycle at which the state keys differ.
    pub cycle: u64,
    /// Last probed cycle at which they still agreed.
    pub last_agree: u64,
    /// Side A's state key at `cycle`.
    pub key_a: String,
    /// Side B's state key at `cycle`.
    pub key_b: String,
    /// Where the counterexample (both last-agreeing checkpoints plus a
    /// report) was dumped, if dumping succeeded.
    pub dump: Option<PathBuf>,
}

/// Search the first cycle `<= max_cycle` at which the two sides' shadow
/// state keys differ. `coarse` is the initial probe stride (it is refined
/// by 8x per round down to single-cycle probes); `None` means the sides
/// never diverged over any probed point.
pub fn bisect_divergence(
    a: &BisectSide,
    b: &BisectSide,
    max_cycle: u64,
    coarse: u64,
) -> Option<Divergence> {
    let mut da = a.fresh();
    let mut db = b.fresh();
    let mut lo = 0u64;
    // Checkpoints of the last agreeing probe, for window refinement.
    let mut ck_a = da.snapshot();
    let mut ck_b = db.snapshot();
    let mut step = coarse.max(1);
    loop {
        let c = lo.saturating_add(step).min(max_cycle);
        let live_a = da.run_until(c, None);
        let live_b = db.run_until(c, None);
        let key_a = da.shadow_state_key().expect("side A has a shadow checker");
        let key_b = db.shadow_state_key().expect("side B has a shadow checker");
        if key_a == key_b {
            if (!live_a && !live_b) || c >= max_cycle {
                return None;
            }
            lo = c;
            ck_a = da.snapshot();
            ck_b = db.snapshot();
            continue;
        }
        if step == 1 {
            let dump = dump_divergence(a, b, &ck_a, &ck_b, lo, c, &key_a, &key_b).ok();
            return Some(Divergence {
                cycle: c,
                last_agree: lo,
                key_a,
                key_b,
                dump,
            });
        }
        // Disagreement inside (lo, c]: rewind both sides to the last
        // agreeing checkpoint and re-probe the window at finer stride.
        step = (step / 8).max(1);
        da = a.revive(&ck_a).expect("restoring side A checkpoint");
        db = b.revive(&ck_b).expect("restoring side B checkpoint");
    }
}

#[allow(clippy::too_many_arguments)]
fn dump_divergence(
    a: &BisectSide,
    b: &BisectSide,
    ck_a: &Snapshot,
    ck_b: &Snapshot,
    last_agree: u64,
    cycle: u64,
    key_a: &str,
    key_b: &str,
) -> std::io::Result<PathBuf> {
    let dir = dump_dir();
    std::fs::create_dir_all(&dir)?;
    let stem = format!("bisect_{}_vs_{}_{cycle}", a.label, b.label);
    std::fs::write(dir.join(format!("{stem}_a.rsnp")), ck_a.to_bytes())?;
    std::fs::write(dir.join(format!("{stem}_b.rsnp")), ck_b.to_bytes())?;
    let report = dir.join(format!("{stem}.txt"));
    std::fs::write(
        &report,
        format!(
            "divergence between '{}' and '{}'\n\
             last agreeing probe: cycle {last_agree}\n\
             first divergent probe: cycle {cycle}\n\
             key A: {key_a}\n\
             key B: {key_b}\n\
             checkpoints of the last agreeing state: {stem}_a.rsnp / {stem}_b.rsnp\n",
            a.label, b.label,
        ),
    )?;
    Ok(report)
}
