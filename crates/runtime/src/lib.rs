#![warn(missing_docs)]

//! Task-dataflow runtime (the paper's Nanos++ / OpenMP 4.0 role).
//!
//! Task-based data-flow programming models "conceive the execution of a
//! parallel program as a set of tasks with data dependences between them"
//! (§II-C). The programmer annotates each task with the address ranges it
//! reads (`in`), writes (`out`) or both (`inout`); the runtime builds a
//! Task Dependence Graph (TDG), keeps a ready queue, schedules ready tasks
//! onto threads and wakes dependents when a task finishes (Figure 3).
//!
//! * [`region`] — dependence directions and annotated ranges.
//! * [`trace`] — the packed memory-reference records task bodies emit.
//! * [`task`] — task bodies and the [`task::TaskCtx`] they run against:
//!   every typed read/write *actually happens* on the byte-accurate
//!   [`raccd_mem::SimMemory`] **and** is recorded for the timing model, so
//!   functional results and simulated traffic can never diverge.
//! * [`graph`] — TDG construction (block-granularity last-writer/reader
//!   tracking, like Nanos++'s region analysis) and completion wake-up.
//! * [`builder`] — the [`builder::ProgramBuilder`] façade workloads use.
//!
//! The ready-queue policies of §II-C live in the `raccd-sched` crate:
//! schedulers are pluggable (`SchedKind`), and the driver wires them to
//! this crate's TDG wake-ups.

pub mod builder;
pub mod graph;
pub mod region;
pub mod retry;
pub mod task;
pub mod trace;
pub mod workload;

pub use builder::{Program, ProgramBuilder};
pub use graph::{TaskGraph, TaskId};
pub use region::{Dep, DepDir};
pub use retry::{RetryBook, RetryDecision};
pub use task::TaskCtx;
pub use trace::MemRef;
pub use workload::Workload;
