//! Figure 7: metrics by directory size — (a) directory accesses,
//! (b) LLC hit ratio, (c) NoC traffic, (d) directory dynamic energy.
//!
//! Usage: `fig7 [--scale ...] [--engine serial|parallel [--threads N]]
//! [--protocol mesi|mesif|moesi] [--topology mesh|numa2]
//! [accesses|llc|noc|energy]` — with no metric argument all four sections
//! print. The engine only changes how simulations are advanced; the
//! figures are bit-identical either way. `--protocol`/`--topology` select
//! the coherence-protocol variant and NoC shape, so the same sweep runs
//! over {MESI, MESIF, MOESI} × {mesh, numa2}.
//!
//! Paper reference points: RaCCD needs only ~26 % of FullCoh's directory
//! accesses; FullCoh LLC hit rate collapses 56 %→24 % by 1:256 while
//! RaCCD holds 51 %; NoC traffic grows 91 % for FullCoh at 1:256 vs 15 %
//! for RaCCD; RaCCD's directory dynamic energy is 71–80 % below FullCoh.

use raccd_bench::{
    bench_names, config_from_args, engine_from_args, mean, run_matrix_engine, scale_from_args,
};
use raccd_core::CoherenceMode;
use raccd_energy::EnergyModel;
use raccd_sim::{Stats, DIR_RATIOS};
use std::collections::HashMap;

fn dir_energy_pj(stats: &Stats, ncores: usize) -> f64 {
    let model = EnergyModel::default();
    stats
        .dir_access_hist
        .iter()
        .map(|&(per_bank, n)| model.dir_access_pj(per_bank * ncores as u64) * n as f64)
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = scale_from_args(&args);
    let names = bench_names(scale);
    let cfg = config_from_args(scale, &args);
    let which: Vec<&str> = {
        let sel: Vec<&str> = args
            .iter()
            .skip(1)
            .filter(|a| ["accesses", "llc", "noc", "energy"].contains(&a.as_str()))
            .map(|a| a.as_str())
            .collect();
        if sel.is_empty() {
            vec!["accesses", "llc", "noc", "energy"]
        } else {
            sel
        }
    };

    let modes: Vec<(CoherenceMode, bool)> =
        CoherenceMode::ALL.iter().map(|&m| (m, false)).collect();
    let results = run_matrix_engine(
        "fig7",
        scale,
        cfg,
        names.len(),
        &modes,
        &DIR_RATIOS,
        engine_from_args(&args),
    );

    let mut by_key: HashMap<(usize, CoherenceMode, usize), &Stats> = HashMap::new();
    for r in &results {
        by_key.insert((r.job.bench_idx, r.job.mode, r.job.ratio), &r.result.stats);
    }

    type Metric = Box<dyn Fn(&Stats) -> f64>;
    let sections: [(&str, &str, Metric, bool); 4] = [
        (
            "accesses",
            "Figure 7a: directory accesses (normalised to FullCoh 1:1)",
            Box::new(|s: &Stats| s.dir_accesses as f64),
            true,
        ),
        (
            "llc",
            "Figure 7b: LLC hit ratio (absolute)",
            Box::new(|s: &Stats| s.llc_hit_ratio()),
            false,
        ),
        (
            "noc",
            "Figure 7c: NoC traffic (normalised to FullCoh 1:1)",
            Box::new(|s: &Stats| s.noc_traffic as f64),
            true,
        ),
        (
            "energy",
            "Figure 7d: directory dynamic energy (normalised to FullCoh 1:1)",
            Box::new(move |s: &Stats| dir_energy_pj(s, cfg.ncores)),
            true,
        ),
    ];

    for (key, title, metric, normalise) in &sections {
        if !which.contains(key) {
            continue;
        }
        println!("# {title}");
        let header: Vec<String> = std::iter::once("benchmark/mode".to_string())
            .chain(DIR_RATIOS.iter().map(|r| format!("1:{r}")))
            .collect();
        println!("{}", header.join("\t"));
        let mut avgs: HashMap<(CoherenceMode, usize), Vec<f64>> = HashMap::new();
        for (b, name) in names.iter().enumerate() {
            let base = if *normalise {
                metric(by_key[&(b, CoherenceMode::FullCoh, 1)]).max(1e-12)
            } else {
                1.0
            };
            for mode in CoherenceMode::ALL {
                let mut row = vec![format!("{name}/{mode}")];
                for &ratio in &DIR_RATIOS {
                    // `.max(0.0)` normalises IEEE −0.0 from empty counters.
                    let v = (metric(by_key[&(b, mode, ratio)]) / base).max(0.0);
                    avgs.entry((mode, ratio)).or_default().push(v);
                    row.push(format!("{v:.3}"));
                }
                println!("{}", row.join("\t"));
            }
        }
        for mode in CoherenceMode::ALL {
            let mut row = vec![format!("Average/{mode}")];
            for &ratio in &DIR_RATIOS {
                row.push(format!("{:.3}", mean(&avgs[&(mode, ratio)])));
            }
            println!("{}", row.join("\t"));
        }
        println!();
    }
}
