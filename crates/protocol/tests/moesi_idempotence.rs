//! Duplicate-message delivery is idempotent for every MOESI message type.
//!
//! Mirrors `mesi_idempotence.rs` under [`ProtocolKind::Moesi`]: the
//! defining difference is that a GetS against a foreign owner is *legal*
//! — the owner's line downgrades M→O and keeps supplying dirty data, so
//! the directory records the requester as a plain sharer while the owner
//! pointer survives. Both that path and the owner-preserving Downgrade
//! must absorb duplicated deliveries without changing state.

use proptest::prelude::*;
use proptest::sample::select;
use raccd_protocol::mesi::{DirMsg, EntryState};
use raccd_protocol::{ProtocolError, ProtocolKind};

const P: ProtocolKind = ProtocolKind::Moesi;

/// Arbitrary-but-valid MOESI entries: any sharer set, owner optional and
/// (when present) also a sharer. No forward pointer — MOESI supplies
/// shared data from the (dirty) owner, not a designated clean sharer.
fn entry_strategy() -> impl Strategy<Value = EntryState> {
    (any::<u16>(), 0usize..17).prop_map(|(sh, owner_sel)| {
        let mut e = EntryState {
            sharers: sh as u64,
            owner: (owner_sel < 16).then_some(owner_sel as u8),
            fwd: None,
        };
        if let Some(o) = e.owner {
            e.sharers |= 1 << o;
        }
        e
    })
}

fn msg_strategy() -> impl Strategy<Value = DirMsg> {
    (select(vec![0usize, 1, 2, 3]), 0usize..16).prop_map(|(kind, core)| match kind {
        0 => DirMsg::GetS { core },
        1 => DirMsg::GetX { core },
        2 => DirMsg::PutM { core },
        _ => DirMsg::Downgrade,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Applying the same message twice: same final state, no new
    /// invalidations from the duplicate.
    #[test]
    fn duplicate_delivery_is_idempotent(e0 in entry_strategy(), msg in msg_strategy()) {
        let mut once = e0;
        let first = once.apply_for(P, msg);
        let mut twice = once;
        match first {
            Ok(eff1) => {
                let eff2 = twice
                    .apply_for(P, msg)
                    .expect("duplicate of a legal message must be legal");
                prop_assert_eq!(once, twice, "state changed under duplicate delivery of {:?}", msg);
                prop_assert_eq!(
                    eff2.invalidate & !eff1.invalidate, 0,
                    "duplicate requested NEW invalidations"
                );
            }
            Err(_) => {
                prop_assert_eq!(e0, once, "failed apply mutated the entry");
                prop_assert_eq!(twice.apply_for(P, msg), first);
            }
        }
    }

    /// The MOESI signature move: a foreign GetS against an owned entry
    /// succeeds, records the requester as a non-exclusive sharer, and the
    /// owner pointer survives — under arbitrary re-delivery.
    #[test]
    fn gets_against_owner_keeps_owner(owner in 0usize..16, delta in 1usize..16) {
        let requester = (owner + delta) % 16;
        let mut e = EntryState::uncached();
        e.record_getx(owner);
        for _ in 0..2 {
            let eff = e
                .apply_for(P, DirMsg::GetS { core: requester })
                .expect("MOESI dirty sharing: foreign GetS is legal");
            prop_assert!(!eff.exclusive);
            prop_assert_eq!(e.owner, Some(owner as u8), "owner pointer must survive");
            prop_assert!(e.sharers & (1 << requester) != 0);
        }
        // The L1-side M→O downgrade is directory-invisible: Downgrade
        // leaves the owner pointer in place.
        e.apply_for(P, DirMsg::Downgrade).unwrap();
        prop_assert_eq!(e.owner, Some(owner as u8));
        // Only the owner's own write-back clears it.
        e.apply_for(P, DirMsg::PutM { core: owner }).unwrap();
        prop_assert_eq!(e.owner, None);
    }

    /// Out-of-range cores are typed errors on every message type, never
    /// panics, and never mutate the entry.
    #[test]
    fn out_of_range_core_is_typed_error(e0 in entry_strategy(), core in 64usize..1000, kind in 0usize..3) {
        let msg = match kind {
            0 => DirMsg::GetS { core },
            1 => DirMsg::GetX { core },
            _ => DirMsg::PutM { core },
        };
        let mut e = e0;
        prop_assert_eq!(e.apply_for(P, msg), Err(ProtocolError::CoreOutOfRange { core }));
        prop_assert_eq!(e, e0);
    }

    /// A GetX invalidates every other holder — owner included — exactly
    /// once; the duplicate may only repeat the original's set.
    #[test]
    fn getx_invalidates_all_other_holders(e0 in entry_strategy(), core in 0usize..16) {
        let mut e = e0;
        let eff = e.apply_for(P, DirMsg::GetX { core }).expect("in-range GetX is legal");
        prop_assert_eq!(eff.invalidate, e0.all_holders() & !(1 << core));
        prop_assert_eq!(e.owner, Some(core as u8));
        prop_assert_eq!(e.sharers, 1 << core);
    }
}
