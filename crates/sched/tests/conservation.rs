//! Property tests: no scheduling policy loses or duplicates tasks, and
//! every pop sequence is a deterministic function of the operation
//! sequence — including under adversarial (shuffled) worker pop order,
//! the scheduler-side mirror of the engine's `set_shuffle` stress.

use proptest::prelude::*;
use raccd_sched::{build, PreemptRecord, SchedKind, SchedParams};
use std::collections::BTreeMap;

/// Mixed push/pop op: `push` pushes `task` from `ctx`, otherwise `ctx`
/// pops.
#[derive(Clone, Copy, Debug)]
struct Op {
    push: bool,
    ctx: usize,
    task: usize,
}

fn params(nctx: usize, numa: bool) -> SchedParams {
    SchedParams {
        nctx,
        // Split the contexts across two sockets when `numa`, else flat.
        ctx_socket: (0..nctx)
            .map(|c| if numa { c * 2 / nctx.max(1) } else { 0 })
            .collect(),
        // Arbitrary but fixed priority table so `priority` exercises
        // non-trivial ordering.
        priorities: (0..64).map(|t| (t as u64 * 7) % 13).collect(),
        quantum: 4096,
    }
}

/// Apply `ops`, then drain with the given rotational pop order. Returns
/// (multiset of pushed tasks, exact pop sequence).
fn run(
    kind: SchedKind,
    p: &SchedParams,
    ops: &[Op],
    drain_order: &[usize],
) -> (BTreeMap<usize, usize>, Vec<usize>) {
    let mut s = build(kind, p);
    let mut pushed: BTreeMap<usize, usize> = BTreeMap::new();
    let mut popped = Vec::new();
    for op in ops {
        let ctx = op.ctx % p.nctx;
        if op.push {
            *pushed.entry(op.task).or_insert(0) += 1;
            s.push(ctx, op.task);
        } else if let Some(t) = s.pop(ctx) {
            popped.push(t);
        }
    }
    // Drain to empty, cycling the (possibly adversarial) worker order.
    let mut i = 0;
    while !s.is_empty() {
        let ctx = drain_order[i % drain_order.len()] % p.nctx;
        if let Some(t) = s.pop(ctx) {
            popped.push(t);
        }
        i += 1;
        assert!(i < 100_000, "drain did not terminate");
    }
    let c = s.counters();
    assert_eq!(c.popped, popped.len() as u64, "popped counter is exact");
    assert_eq!(
        c.pushed,
        pushed.values().sum::<usize>() as u64,
        "pushed counter is exact"
    );
    assert_eq!(c.local_pops + c.steals, c.popped, "pop split is exact");
    (pushed, popped)
}

fn multiset(seq: &[usize]) -> BTreeMap<usize, usize> {
    let mut m = BTreeMap::new();
    for &t in seq {
        *m.entry(t).or_insert(0) += 1;
    }
    m
}

proptest! {
    /// Multiset of pushed tasks == multiset of popped tasks at drain,
    /// for every policy, on flat and NUMA socket maps.
    #[test]
    fn no_policy_loses_or_duplicates_tasks(
        nctx in 1usize..8,
        numa: bool,
        raw in proptest::collection::vec((any::<bool>(), 0usize..8, 0usize..64), 0..200),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(push, ctx, task)| Op { push, ctx, task })
            .collect();
        let p = params(nctx, numa);
        let order: Vec<usize> = (0..nctx).collect();
        for kind in SchedKind::ALL {
            let (pushed, popped) = run(kind, &p, &ops, &order);
            prop_assert_eq!(&multiset(&popped), &pushed, "{} conservation", kind);
        }
    }

    /// The same operation sequence produces bit-identical pop sequences
    /// across runs.
    #[test]
    fn pop_order_is_deterministic_across_runs(
        nctx in 1usize..8,
        numa: bool,
        raw in proptest::collection::vec((any::<bool>(), 0usize..8, 0usize..64), 0..200),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(push, ctx, task)| Op { push, ctx, task })
            .collect();
        let p = params(nctx, numa);
        let order: Vec<usize> = (0..nctx).collect();
        for kind in SchedKind::ALL {
            let (_, a) = run(kind, &p, &ops, &order);
            let (_, b) = run(kind, &p, &ops, &order);
            prop_assert_eq!(a, b, "{} determinism", kind);
        }
    }

    /// Adversarial worker order: shuffling which context drains next
    /// (the scheduler-side analogue of `WorkerPool::set_shuffle`) may
    /// permute the pop sequence but must still conserve the multiset.
    #[test]
    fn conservation_holds_under_shuffled_worker_order(
        nctx in 2usize..8,
        numa: bool,
        rot in 1usize..8,
        raw in proptest::collection::vec((any::<bool>(), 0usize..8, 0usize..64), 0..200),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(push, ctx, task)| Op { push, ctx, task })
            .collect();
        let p = params(nctx, numa);
        let plain: Vec<usize> = (0..nctx).collect();
        // A rotated-and-strided order stands in for an adversarial
        // shuffle while staying reproducible.
        let shuffled: Vec<usize> = (0..nctx).map(|i| (i * rot + rot) % nctx).collect();
        for kind in SchedKind::ALL {
            let (pushed, a) = run(kind, &p, &ops, &plain);
            let (_, b) = run(kind, &p, &ops, &shuffled);
            prop_assert_eq!(&multiset(&a), &pushed, "{} plain-order conservation", kind);
            prop_assert_eq!(&multiset(&b), &pushed, "{} shuffled-order conservation", kind);
        }
    }

    /// The quantum audit log is append-only and replays exactly.
    #[test]
    fn quantum_audit_log_replays_deterministically(
        recs in proptest::collection::vec((0u64..1_000_000, 0usize..64, 0usize..8), 0..50),
    ) {
        let p = params(4, false);
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut s = build(SchedKind::Quantum, &p);
            for (i, &(cycle, task, ctx)) in recs.iter().enumerate() {
                s.push(ctx, task);
                s.note_preempt(PreemptRecord {
                    cycle,
                    task,
                    ctx,
                    pos: i * 64,
                    remaining: task,
                });
            }
            runs.push(s.audit().to_vec());
        }
        prop_assert_eq!(&runs[0], &runs[1]);
        prop_assert_eq!(runs[0].len(), recs.len());
    }
}
