//! Duplicate-message delivery is idempotent for every MESIF message type.
//!
//! Mirrors `mesi_idempotence.rs` under [`ProtocolKind::Mesif`]: the
//! forward pointer makes the entry strictly richer (PutF joins the
//! message alphabet, GetS moves the pointer to the newest sharer), and
//! the fault plane's duplication site re-delivers any of these verbatim —
//! so every transition must absorb its own copy without changing state
//! or requesting new invalidations. The forward pointer itself must
//! re-derive identically under the duplicate (fwd-idempotence).

use proptest::prelude::*;
use proptest::sample::select;
use raccd_protocol::mesi::{DirMsg, EntryState};
use raccd_protocol::{ProtocolError, ProtocolKind};

const P: ProtocolKind = ProtocolKind::Mesif;

/// Arbitrary-but-valid MESIF entries: any sharer set, owner optional and
/// (when present) also a sharer; the forward pointer only exists in
/// ownerless entries and always names a sharer — the invariants the
/// machine (and the shadow checker's fwd-desync audit) maintain.
fn entry_strategy() -> impl Strategy<Value = EntryState> {
    (any::<u16>(), 0usize..17, 0usize..17).prop_map(|(sh, owner_sel, fwd_sel)| {
        let mut e = EntryState {
            sharers: sh as u64,
            owner: (owner_sel < 16).then_some(owner_sel as u8),
            fwd: None,
        };
        if let Some(o) = e.owner {
            e.sharers |= 1 << o;
        } else if fwd_sel < 16 && e.sharers & (1 << fwd_sel) != 0 {
            e.fwd = Some(fwd_sel as u8);
        }
        e
    })
}

fn msg_strategy() -> impl Strategy<Value = DirMsg> {
    (select(vec![0usize, 1, 2, 3, 4]), 0usize..16).prop_map(|(kind, core)| match kind {
        0 => DirMsg::GetS { core },
        1 => DirMsg::GetX { core },
        2 => DirMsg::PutM { core },
        3 => DirMsg::PutF { core },
        _ => DirMsg::Downgrade,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Applying the same message twice: same final state (including the
    /// forward pointer), no new invalidations from the duplicate.
    #[test]
    fn duplicate_delivery_is_idempotent(e0 in entry_strategy(), msg in msg_strategy()) {
        let mut once = e0;
        let first = once.apply_for(P, msg);
        let mut twice = once;
        match first {
            Ok(eff1) => {
                let eff2 = twice
                    .apply_for(P, msg)
                    .expect("duplicate of a legal message must be legal");
                prop_assert_eq!(once, twice, "state changed under duplicate delivery of {:?}", msg);
                prop_assert_eq!(
                    eff2.invalidate & !eff1.invalidate, 0,
                    "duplicate requested NEW invalidations"
                );
            }
            Err(_) => {
                prop_assert_eq!(e0, once, "failed apply mutated the entry");
                prop_assert_eq!(twice.apply_for(P, msg), first);
            }
        }
    }

    /// A successful ownerless GetS hands the forward pointer to the
    /// requester, and the pointer always names a tracked sharer.
    #[test]
    fn gets_moves_forward_pointer_to_newest_sharer(e0 in entry_strategy(), core in 0usize..16) {
        let mut e = e0;
        if e.apply_for(P, DirMsg::GetS { core }).is_ok() && e.owner.is_none() {
            prop_assert_eq!(e.fwd, Some(core as u8), "newest sharer must take F");
        }
        if let Some(fc) = e.fwd {
            prop_assert!(e.sharers & (1 << fc) != 0, "fwd must name a tracked sharer");
        }
    }

    /// PutF from the forwarder clears both the pointer and the sharer
    /// bit; from any other core it is a no-op (stale PutF after the
    /// pointer already moved on).
    #[test]
    fn putf_clears_only_the_current_forwarder(e0 in entry_strategy(), core in 0usize..16) {
        let mut e = e0;
        let was_fwd = e.fwd == Some(core as u8);
        e.apply_for(P, DirMsg::PutF { core }).expect("PutF is infallible in range");
        if was_fwd {
            prop_assert_eq!(e.fwd, None);
            prop_assert_eq!(e.sharers & (1 << core), 0, "PutF notifies precisely");
        } else {
            prop_assert_eq!(e, e0, "stale PutF must be a no-op");
        }
    }

    /// Out-of-range cores are typed errors on every message type, never
    /// panics, and never mutate the entry.
    #[test]
    fn out_of_range_core_is_typed_error(e0 in entry_strategy(), core in 64usize..1000, kind in 0usize..4) {
        let msg = match kind {
            0 => DirMsg::GetS { core },
            1 => DirMsg::GetX { core },
            2 => DirMsg::PutM { core },
            _ => DirMsg::PutF { core },
        };
        let mut e = e0;
        prop_assert_eq!(e.apply_for(P, msg), Err(ProtocolError::CoreOutOfRange { core }));
        prop_assert_eq!(e, e0);
    }

    /// GetS against a foreign owner is still OwnerNotDowngraded under
    /// MESIF (Forward is a *clean* supplier; dirty owners downgrade
    /// first), and the error names the protocol.
    #[test]
    fn gets_against_owner_is_recoverable(owner in 0usize..16, delta in 1usize..16) {
        let requester = (owner + delta) % 16;
        let mut e = EntryState::uncached();
        e.record_getx(owner);
        let before = e;
        prop_assert_eq!(
            e.apply_for(P, DirMsg::GetS { core: requester }),
            Err(ProtocolError::OwnerNotDowngraded {
                protocol: P,
                state: before.state(),
                owner: owner as u8,
                requester,
            })
        );
        prop_assert_eq!(e, before, "rejected GetS must not mutate");
        e.apply_for(P, DirMsg::Downgrade).unwrap();
        let eff = e.apply_for(P, DirMsg::GetS { core: requester }).unwrap();
        prop_assert!(!eff.exclusive);
        prop_assert_eq!(e.fwd, Some(requester as u8), "retry hands F to the requester");
    }
}
