//! The recorder: buffers the event stream, drives the sampler and
//! histograms, and fans events out to registered sinks.
//!
//! Instrumentation sites hold an `Option<&mut Recorder>`; with `None` the
//! hooks compile down to a branch on a niche-optimised pointer, keeping the
//! telemetry-disabled hot path within the <2 % overhead budget (see the
//! `telemetry` bench in `raccd-bench`).

use crate::event::{Event, NameId, Sink};
use crate::hist::Log2Hist;
use crate::sampler::{Gauges, IntervalSampler, Sample};
use raccd_sim::Stats;

/// Recorder configuration.
#[derive(Clone, Copy, Debug)]
pub struct RecorderConfig {
    /// Sampler cadence in cycles (default 4096 — fine enough for Figure 8
    /// at test scale, coarse enough to stay off the profile).
    pub sample_interval: u64,
    /// Buffer events in memory (`Recorder::events`). Disable when a
    /// streaming sink is attached and runs are long.
    pub buffer_events: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            sample_interval: 4096,
            buffer_events: true,
        }
    }
}

/// Collects telemetry for one simulation run.
pub struct Recorder {
    cfg: RecorderConfig,
    names: Vec<String>,
    events: Vec<Event>,
    sinks: Vec<Box<dyn Sink>>,
    sampler: IntervalSampler,
    /// End-to-end latency of each replayed memory reference.
    pub hist_mem_latency: Log2Hist,
    /// Cycles tasks waited between wake-up and dispatch.
    pub hist_wake_to_dispatch: Log2Hist,
    /// Queueing delay per reference at busy LLC/directory banks.
    pub hist_bank_wait: Log2Hist,
    /// Extra cycles each fault-recovered message spent in timeouts,
    /// NACK round-trips and backoff before delivery.
    pub hist_retry_latency: Log2Hist,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(RecorderConfig::default())
    }
}

impl Recorder {
    /// Recorder with the given configuration.
    pub fn new(cfg: RecorderConfig) -> Self {
        Recorder {
            cfg,
            names: Vec::new(),
            events: Vec::new(),
            sinks: Vec::new(),
            sampler: IntervalSampler::new(cfg.sample_interval),
            hist_mem_latency: Log2Hist::new(),
            hist_wake_to_dispatch: Log2Hist::new(),
            hist_bank_wait: Log2Hist::new(),
            hist_retry_latency: Log2Hist::new(),
        }
    }

    /// Attach a streaming sink; it sees every subsequent event and sample.
    pub fn add_sink(&mut self, sink: Box<dyn Sink>) {
        self.sinks.push(sink);
    }

    /// Intern a task name, returning a stable id.
    pub fn intern(&mut self, name: &str) -> NameId {
        match self.names.iter().position(|n| n == name) {
            Some(i) => i as NameId,
            None => {
                self.names.push(name.to_string());
                (self.names.len() - 1) as NameId
            }
        }
    }

    /// The interned name table.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Resolve an interned id (empty string for unknown ids).
    pub fn name(&self, id: NameId) -> &str {
        self.names
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Record one event.
    pub fn record(&mut self, ev: Event) {
        for s in &mut self.sinks {
            s.on_event(&self.names, &ev);
        }
        if self.cfg.buffer_events {
            self.events.push(ev);
        }
    }

    /// The buffered event stream, in record order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Whether a sample is due at `cycle`; callers use this to avoid
    /// computing gauges on the hot path when no sample will be taken.
    #[inline]
    pub fn sample_due(&self, cycle: u64) -> bool {
        self.sampler.due(cycle)
    }

    /// Sample the time-series if `cycle` crossed an interval boundary.
    pub fn maybe_sample(&mut self, cycle: u64, stats: &Stats, gauges: Gauges) {
        let before = self.sampler.samples().len();
        self.sampler.maybe_sample(cycle, stats, gauges);
        if self.sampler.samples().len() > before {
            let s = *self.sampler.samples().last().unwrap();
            for sink in &mut self.sinks {
                sink.on_sample(&s);
            }
        }
    }

    /// Take the end-of-run sample and flush sinks. Call once, after the
    /// simulation finishes (cycle = final time).
    pub fn finish(&mut self, cycle: u64, stats: &Stats, gauges: Gauges) {
        self.sampler.force_sample(cycle, stats, gauges);
        let s = *self.sampler.samples().last().unwrap();
        for sink in &mut self.sinks {
            sink.on_sample(&s);
            sink.on_finish();
        }
    }

    /// The interval time-series collected so far.
    pub fn samples(&self) -> &[Sample] {
        self.sampler.samples()
    }

    /// Time-weighted mean directory occupancy over the series.
    pub fn mean_dir_occupancy(&self) -> f64 {
        self.sampler.mean_occupancy()
    }

    /// The sampler cadence in cycles.
    pub fn sample_interval(&self) -> u64 {
        self.sampler.interval()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingSink {
        events: usize,
        samples: usize,
        finished: bool,
    }

    impl Sink for CountingSink {
        fn on_event(&mut self, _names: &[String], _ev: &Event) {
            self.events += 1;
        }
        fn on_sample(&mut self, _s: &Sample) {
            self.samples += 1;
        }
        fn on_finish(&mut self) {
            self.finished = true;
        }
    }

    #[test]
    fn intern_is_stable() {
        let mut r = Recorder::new(RecorderConfig::default());
        let a = r.intern("write");
        let b = r.intern("read");
        assert_eq!(r.intern("write"), a);
        assert_ne!(a, b);
        assert_eq!(r.name(a), "write");
        assert_eq!(r.name(99), "");
    }

    #[test]
    fn record_buffers_and_fans_out() {
        let mut r = Recorder::new(RecorderConfig::default());
        r.add_sink(Box::new(CountingSink {
            events: 0,
            samples: 0,
            finished: false,
        }));
        r.record(Event::TaskWoken {
            cycle: 5,
            task: 1,
            waker_core: None,
        });
        assert_eq!(r.events().len(), 1);
        r.finish(100, &Stats::default(), Gauges::default());
        assert_eq!(r.samples().len(), 1, "finish takes the end-of-run sample");
    }

    #[test]
    fn unbuffered_recorder_keeps_no_events() {
        let mut r = Recorder::new(RecorderConfig {
            buffer_events: false,
            ..RecorderConfig::default()
        });
        r.record(Event::TaskWoken {
            cycle: 1,
            task: 0,
            waker_core: Some(3),
        });
        assert!(r.events().is_empty());
    }
}
