//! The TLB-based temporarily-private classifier the paper positions RaCCD
//! against (§II-B, citing TokenTLB and related work \[10\]–\[12\]).
//!
//! Classification lives in the TLB entries:
//!
//! * On a TLB miss, a **TLB-to-TLB miss resolution** broadcast asks every
//!   other core whether it holds the page. If nobody does, the page is
//!   classified *private* to the missing core; otherwise *shared* — and any
//!   holder still treating it as private is downgraded (its cached blocks
//!   of the page are flushed).
//! * Unlike the OS page-table scheme, classification *recovers*: once all
//!   TLB entries for a page are gone, the next miss may re-classify it
//!   private — that is what captures temporarily-private data.
//! * The accuracy limit is **dead time**: a stale TLB entry in a previous
//!   owner makes the resolution see a "holder" that will never touch the
//!   page again. The optional **decay** predictor invalidates entries that
//!   have not been used for `decay_threshold` TLB accesses during
//!   resolution, at the price of extra TLB misses later (§II-B: "this
//!   solution introduces performance overheads due to extra TLB misses").
//! * The whole scheme requires **TLB–L1 inclusivity**: evicting a TLB entry
//!   flushes the page's blocks from that core's L1.
//!
//! RaCCD needs none of this machinery — that is the paper's point — but
//! implementing it lets the reproduction quantify the comparison.

use raccd_mem::{PAddr, PageNum, VAddr, PAGE_SHIFT};
use raccd_sim::Machine;
use std::collections::HashMap;

/// Per-core-and-page classification state for the TLB-based scheme.
#[derive(Clone, Debug)]
pub struct TlbClassifier {
    /// (core, vpage) → classified private? Mirrors the private/shared bit
    /// each TLB entry would carry.
    class: HashMap<(usize, u64), bool>,
    /// Enable the decay predictor.
    pub decay: bool,
    /// Entries idle for more than this many TLB accesses count as decayed.
    pub decay_threshold: u64,
    /// TLB-to-TLB resolution rounds performed.
    resolutions: u64,
    /// Decay invalidations performed.
    decay_invalidations: u64,
}

/// Result of a classified translation.
#[derive(Clone, Copy, Debug)]
pub struct TlbClassOutcome {
    /// Physical address.
    pub paddr: PAddr,
    /// Cycles charged (TLB, page walk, resolution, flushes).
    pub cycles: u64,
    /// Whether accesses to this page from this core are non-coherent.
    pub private: bool,
}

impl Default for TlbClassifier {
    fn default() -> Self {
        TlbClassifier {
            class: HashMap::new(),
            decay: true,
            decay_threshold: 4096,
            resolutions: 0,
            decay_invalidations: 0,
        }
    }
}

impl TlbClassifier {
    /// Fresh classifier with the decay predictor enabled.
    pub fn new() -> Self {
        TlbClassifier::default()
    }

    /// TLB-to-TLB resolution rounds performed so far.
    pub fn resolutions(&self) -> u64 {
        self.resolutions
    }

    /// Decay invalidations performed so far.
    pub fn decay_invalidations(&self) -> u64 {
        self.decay_invalidations
    }

    /// Translate `vaddr` for `core`, maintaining the TLB-resident
    /// classification. Replaces `Machine::translate` under this mode.
    pub fn translate(
        &mut self,
        m: &mut Machine,
        core: usize,
        vaddr: VAddr,
        now: u64,
    ) -> TlbClassOutcome {
        let vpage = vaddr.page();
        let mut cycles = m.cfg.lat.tlb;

        if let Some(ppage) = m.tlb_lookup(core, vpage) {
            let private = *self.class.get(&(core, vpage.0)).unwrap_or(&false);
            return TlbClassOutcome {
                paddr: compose(ppage, vaddr),
                cycles,
                private,
            };
        }

        // TLB miss: page walk + TLB-to-TLB miss resolution broadcast.
        cycles += m.cfg.lat.page_walk;
        let ppage = m.page_table.translate_page(vpage);
        cycles += m.broadcast_round(core);
        self.resolutions += 1;

        // Find live holders; decay-invalidate stale ones.
        let ncores = m.cfg.ncores;
        let mut holders: Vec<usize> = Vec::new();
        for other in 0..ncores {
            if other == core || m.tlb_peek(other, vpage).is_none() {
                continue;
            }
            let idle =
                m.tlb_stamp(other) - m.tlb_last_use(other, vpage).expect("entry just peeked");
            if self.decay && idle > self.decay_threshold {
                // Decayed entry: invalidate it (and, for inclusivity, the
                // holder's cached blocks of the page).
                m.tlb_invalidate(other, vpage);
                cycles += m.flush_page(other, ppage, vpage, now);
                self.class.remove(&(other, vpage.0));
                self.decay_invalidations += 1;
            } else {
                holders.push(other);
            }
        }

        let private = holders.is_empty();
        if !private {
            // Downgrade any holder still classified private: its blocks of
            // the page were non-coherent and must be flushed (§II-B).
            for h in holders {
                if self.class.get(&(h, vpage.0)).copied().unwrap_or(false) {
                    cycles += m.flush_page(h, ppage, vpage, now);
                    self.class.insert((h, vpage.0), false);
                }
            }
        }
        self.class.insert((core, vpage.0), private);

        // Fill the TLB; the victim drags its page out of the L1
        // (TLB–L1 inclusivity).
        if let Some((ev_vpage, ev_ppage)) = m.tlb_fill_evicting(core, vpage, ppage) {
            cycles += m.flush_page(core, ev_ppage, ev_vpage, now);
            self.class.remove(&(core, ev_vpage.0));
        }

        TlbClassOutcome {
            paddr: compose(ppage, vaddr),
            cycles,
            private,
        }
    }
}

#[inline]
fn compose(ppage: PageNum, vaddr: VAddr) -> PAddr {
    PAddr((ppage.0 << PAGE_SHIFT) | vaddr.page_offset())
}

impl raccd_snap::Snap for TlbClassifier {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        self.class.save(w);
        self.decay.save(w);
        w.u64(self.decay_threshold);
        w.u64(self.resolutions);
        w.u64(self.decay_invalidations);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        Ok(TlbClassifier {
            class: Snap::load(r)?,
            decay: Snap::load(r)?,
            decay_threshold: r.u64()?,
            resolutions: r.u64()?,
            decay_invalidations: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raccd_sim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::scaled())
    }

    #[test]
    fn first_touch_is_private() {
        let mut m = machine();
        let mut c = TlbClassifier::new();
        let out = c.translate(&mut m, 0, VAddr(0x40_0000), 0);
        assert!(out.private);
        assert_eq!(c.resolutions(), 1);
        // Second access hits the TLB: still private, no new resolution.
        let out2 = c.translate(&mut m, 0, VAddr(0x40_0040), 1);
        assert!(out2.private);
        assert_eq!(c.resolutions(), 1);
        assert!(out2.cycles < out.cycles);
    }

    #[test]
    fn second_core_sees_shared_and_downgrades_owner() {
        let mut m = machine();
        let mut c = TlbClassifier::new();
        assert!(c.translate(&mut m, 0, VAddr(0x40_0000), 0).private);
        let out = c.translate(&mut m, 1, VAddr(0x40_0000), 1);
        assert!(!out.private, "live holder in core 0's TLB");
        // Core 0's classification also flipped to shared.
        let again = c.translate(&mut m, 0, VAddr(0x40_0000), 2);
        assert!(!again.private);
    }

    #[test]
    fn classification_recovers_after_tlb_eviction() {
        // The defining improvement over PT: once the first owner's TLB
        // entry is gone, a later core re-classifies the page private.
        let mut cfg = MachineConfig::scaled();
        cfg.tlb_entries = 2; // tiny TLB forces eviction
        let mut m = Machine::new(cfg);
        let mut c = TlbClassifier::new();
        assert!(c.translate(&mut m, 0, VAddr(0x40_0000), 0).private);
        // Evict page 0x400 from core 0's TLB by touching two other pages.
        c.translate(&mut m, 0, VAddr(0x40_1000), 1);
        c.translate(&mut m, 0, VAddr(0x40_2000), 2);
        // Core 1 now classifies it private again — unlike PT.
        let out = c.translate(&mut m, 1, VAddr(0x40_0000), 3);
        assert!(out.private, "temporarily-private page recovered");
    }

    #[test]
    fn decay_removes_dead_time() {
        let mut m = machine();
        let mut c = TlbClassifier::new();
        c.decay_threshold = 4;
        assert!(c.translate(&mut m, 0, VAddr(0x40_0000), 0).private);
        // Core 0 touches other pages: its 0x400 entry decays (stays in the
        // TLB, but idle beyond the threshold).
        for i in 1..8u64 {
            c.translate(&mut m, 0, VAddr(0x40_0000 + i * 0x1000), i);
        }
        let out = c.translate(&mut m, 1, VAddr(0x40_0000), 100);
        assert!(out.private, "decayed entry must not count as a holder");
        assert!(c.decay_invalidations() > 0);
    }

    #[test]
    fn without_decay_dead_time_misclassifies() {
        let mut m = machine();
        let mut c = TlbClassifier::new();
        c.decay = false;
        assert!(c.translate(&mut m, 0, VAddr(0x40_0000), 0).private);
        for i in 1..8u64 {
            c.translate(&mut m, 0, VAddr(0x40_0000 + i * 0x1000), i);
        }
        let out = c.translate(&mut m, 1, VAddr(0x40_0000), 100);
        assert!(!out.private, "stale entry causes the §II-B dead-time error");
    }

    #[test]
    fn resolution_costs_more_than_plain_walk() {
        let mut m = machine();
        let mut c = TlbClassifier::new();
        let classified = c.translate(&mut m, 0, VAddr(0x40_0000), 0).cycles;
        let (_, plain) = m.translate(1, VAddr(0x41_0000));
        assert!(
            classified > plain,
            "broadcast round must cost extra: {classified} vs {plain}"
        );
    }
}
