//! Golden-file tests of the telemetry exporters.
//!
//! A fixed, hand-built recorder (every event variant, two samples, three
//! histograms) is exported through each writer and compared byte-for-byte
//! against the files committed under `tests/golden/`. Each export is then
//! re-read through the dependency-free JSON parser (`raccd_obs::json`) to
//! prove the round trip: what the exporters emit, the parser recovers —
//! values, nulls and escapes included.
//!
//! To regenerate after an intentional format change:
//! `RACCD_UPDATE_GOLDEN=1 cargo test -p raccd-obs --test export_golden`
//! and commit the diff.

use raccd_obs::json::{self, Value};
use raccd_obs::{
    chrome_trace_json, write_campaign_depth_csv, write_events_jsonl, write_histograms,
    write_series_csv, CampaignAction, Event, Gauges, Recorder,
};
use raccd_sim::{CoherenceEvent, Stats};
use std::path::Path;

/// Build the fixed telemetry fixture: one tiny "run" touching every event
/// variant and every exporter input.
fn fixture() -> Recorder {
    let mut rec = Recorder::default();
    let t0 = rec.intern("init \"grid\""); // exercises string escaping
    let t1 = rec.intern("sweep");

    rec.record(Event::TaskCreated {
        cycle: 0,
        task: 0,
        name: t0,
        deps: 0,
    });
    rec.record(Event::TaskCreated {
        cycle: 0,
        task: 1,
        name: t1,
        deps: 2,
    });
    rec.record(Event::TaskWoken {
        cycle: 0,
        task: 0,
        waker_core: None,
    });
    rec.record(Event::TaskScheduled {
        cycle: 100,
        task: 0,
        name: t0,
        ctx: 0,
        core: 0,
        wait_cycles: 100,
    });
    rec.record(Event::TaskMigrated {
        cycle: 100,
        task: 0,
        from_core: 1,
        to_core: 0,
    });
    rec.record(Event::NcrtRegister {
        cycle: 110,
        ctx: 0,
        core: 0,
        task: 0,
        dur: 14,
        entries_added: 1,
        tlb_lookups: 4,
        overflowed: false,
    });
    rec.record(Event::Coherence {
        cycle: 150,
        ev: CoherenceEvent::CoherentFill {
            core: 0,
            block: raccd_mem::BlockAddr(0x40),
            write: true,
            from_owner: false,
        },
    });
    rec.record(Event::Coherence {
        cycle: 160,
        ev: CoherenceEvent::AdrResize {
            bank: 2,
            grow: false,
            new_entries: 1024,
            blocked_cycles: 96,
        },
    });
    rec.record(Event::NcrtInvalidate {
        cycle: 300,
        ctx: 0,
        core: 0,
        task: 0,
        dur: 40,
        lines_flushed: 3,
    });
    rec.record(Event::TaskCompleted {
        cycle: 340,
        task: 0,
        ctx: 0,
        refs: 64,
    });
    rec.record(Event::TaskWoken {
        cycle: 340,
        task: 1,
        waker_core: Some(0),
    });
    rec.record(Event::PtTransition {
        cycle: 400,
        prev_owner: 0,
        page: 0x40,
        flushed_lines: 5,
    });
    // Campaign-plane lifecycle (host-ms clock, not simulated cycles).
    rec.record(Event::Campaign {
        cycle: 500,
        action: CampaignAction::Enqueue,
        fingerprint: 0xdead_beef_cafe_f00d,
        seed: 7,
        queue_depth: 1,
    });
    rec.record(Event::Campaign {
        cycle: 512,
        action: CampaignAction::Complete,
        fingerprint: 0xdead_beef_cafe_f00d,
        seed: 7,
        queue_depth: 0,
    });

    rec.hist_mem_latency.record(2);
    rec.hist_mem_latency.record(120);
    rec.hist_mem_latency.record(121);
    rec.hist_wake_to_dispatch.record(100);
    rec.hist_bank_wait.record(0);

    let stats = Stats {
        l1_hits: 50,
        l1_misses: 14,
        nc_fills: 9,
        coherent_fills: 5,
        ..Stats::default()
    };
    let gauges = Gauges {
        dir_occupied: 12,
        dir_capacity: 2048,
        ready_tasks: 1,
        busy_contexts: 1,
        sched_popped: 1,
        sched_steals: 0,
    };
    rec.maybe_sample(4096, &stats, gauges);
    rec.finish(8000, &stats, gauges);
    rec
}

/// Compare `got` against the committed golden file, or rewrite it when
/// `RACCD_UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, got: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("RACCD_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); run with RACCD_UPDATE_GOLDEN=1")
    });
    assert_eq!(
        got, want,
        "{name} drifted from its golden file; if intentional, regenerate with RACCD_UPDATE_GOLDEN=1"
    );
}

#[test]
fn events_jsonl_matches_golden_and_parses() {
    let rec = fixture();
    let mut buf = Vec::new();
    write_events_jsonl(rec.names(), rec.events(), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_golden("events.jsonl", &text);

    // Round trip: every line parses, and the typed content survives.
    let lines: Vec<Value> = text
        .lines()
        .map(|l| json::parse(l).expect("JSONL line parses"))
        .collect();
    assert_eq!(lines.len(), rec.events().len());
    // The escaped task name comes back exactly.
    assert_eq!(
        lines[0].get("name").and_then(Value::as_str),
        Some("init \"grid\"")
    );
    // Initially-ready wake has a JSON null waker.
    assert_eq!(lines[2].get("waker_core"), Some(&Value::Null));
    // The later wake carries its waking core.
    assert_eq!(
        lines[10].get("waker_core").and_then(Value::as_f64),
        Some(0.0)
    );
    // The migration event carries both cores.
    assert_eq!(
        lines[4].get("kind").and_then(Value::as_str),
        Some("task_migrated")
    );
    assert_eq!(lines[4].get("from_core").and_then(Value::as_f64), Some(1.0));
    assert_eq!(lines[4].get("to_core").and_then(Value::as_f64), Some(0.0));
    // Numeric payloads survive.
    assert_eq!(
        lines[5].get("tlb_lookups").and_then(Value::as_f64),
        Some(4.0)
    );
    assert_eq!(
        lines[6].get("kind").and_then(Value::as_str),
        Some("coherent_fill")
    );
}

#[test]
fn chrome_trace_matches_golden_and_parses() {
    let rec = fixture();
    let text = chrome_trace_json(&rec);
    assert_golden("trace.json", &text);

    let doc = json::parse(&text).expect("trace parses as one JSON document");
    let events = doc.get("traceEvents").expect("traceEvents key");
    assert!(!events.items().is_empty(), "trace has events");
    // Every trace event carries the Perfetto-required fields (metadata
    // records, ph == "M", are timeless by spec).
    for ev in events.items() {
        let ph = ev.get("ph").and_then(Value::as_str).expect("phase field");
        assert!(ev.get("pid").is_some(), "missing pid: {ev:?}");
        if ph != "M" {
            assert!(ev.get("ts").is_some(), "missing ts: {ev:?}");
        }
    }
    // The B/E task span for task 0 is present and ordered.
    let phases: Vec<&str> = events
        .items()
        .iter()
        .filter_map(|e| e.get("ph").and_then(Value::as_str))
        .collect();
    let b = phases.iter().position(|p| *p == "B");
    let e = phases.iter().position(|p| *p == "E");
    assert!(b.is_some() && e.is_some() && b < e, "task span B before E");
    // The migration instant landed on the machine track.
    assert!(text.contains("task_migrated"), "migration instant exported");
}

#[test]
fn series_csv_matches_golden() {
    let rec = fixture();
    let mut buf = Vec::new();
    write_series_csv(rec.samples(), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_golden("series.csv", &text);
    let mut lines = text.lines();
    let header = lines.next().expect("header row");
    assert!(header.starts_with("cycle,"));
    assert_eq!(lines.count(), 2, "one interval sample + the finish sample");
}

#[test]
fn campaign_depth_csv_matches_golden() {
    let rec = fixture();
    let mut buf = Vec::new();
    write_campaign_depth_csv(rec.events(), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_golden("campaign_depth.csv", &text);
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("ms,action,fp,seed,queue_depth"));
    assert_eq!(lines.next(), Some("500,enqueue,deadbeefcafef00d,7,1"));
    assert_eq!(lines.next(), Some("512,complete,deadbeefcafef00d,7,0"));
    assert_eq!(lines.next(), None, "non-campaign events are filtered out");
}

#[test]
fn histograms_match_golden() {
    let rec = fixture();
    let mut buf = Vec::new();
    write_histograms(&rec, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_golden("histograms.txt", &text);
    assert!(text.contains("mem_latency"));
}
