//! Fault-plane overhead: the same simulation with no plane attached,
//! with a zero-rate plane (resilience machinery armed, nothing injected
//! — must be perf-neutral: every protocol path keeps the plane behind a
//! single never-taken branch), and with a light mixed NoC plan for scale.

use criterion::{criterion_group, criterion_main, Criterion};
use raccd_core::driver::{run_program_faulty, run_program_with};
use raccd_core::CoherenceMode;
use raccd_sim::{FaultPlan, MachineConfig};
use raccd_workloads::{all_benchmarks, Scale};

fn fault_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_overhead");
    g.sample_size(10);

    g.bench_function("no_plane", |b| {
        b.iter(|| {
            let w = &all_benchmarks(Scale::Test)[3]; // Jacobi
            run_program_with(
                MachineConfig::scaled(),
                CoherenceMode::Raccd,
                w.build(),
                None,
            )
            .stats
            .cycles
        })
    });

    g.bench_function("zero_rate_plane", |b| {
        b.iter(|| {
            let w = &all_benchmarks(Scale::Test)[3];
            run_program_faulty(
                MachineConfig::scaled(),
                CoherenceMode::Raccd,
                w.build(),
                FaultPlan::default(),
                None,
            )
            .stats
            .cycles
        })
    });

    g.bench_function("light_noc_faults", |b| {
        let plan = FaultPlan::from_spec("seed=42;drop=0.005;corrupt=0.002;delay=0.01:16")
            .expect("valid spec");
        b.iter(|| {
            let w = &all_benchmarks(Scale::Test)[3];
            run_program_faulty(
                MachineConfig::scaled(),
                CoherenceMode::Raccd,
                w.build(),
                plan,
                None,
            )
            .stats
            .cycles
        })
    });

    g.finish();
}

criterion_group!(benches, fault_overhead);
criterion_main!(benches);
