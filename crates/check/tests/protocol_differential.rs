//! Per-protocol × per-topology engine differential.
//!
//! The engine bit-identity contract is protocol- and topology-blind: for
//! every coherence protocol ({MESI, MESIF, MOESI}) on every NoC topology
//! ({mesh, numa2}), the epoch-parallel engine must reproduce the serial
//! oracle exactly — same `Stats`, same shadow-checker `state_key` (which
//! renders the protocol-specific F/O line states and the directory's
//! forward pointer, so a protocol-path divergence cannot hide). Any
//! divergence dumps a replayable counterexample recipe to
//! `$RACCD_CHECK_DUMP_DIR` (or `target/raccd-check-counterexamples/`).

use raccd_core::{CoherenceMode, Driver, DriverOutput, Engine, Recorder};
use raccd_runtime::Workload;
use raccd_sim::{MachineConfig, ProtocolKind, Topology};
use raccd_workloads::{histo::Histo, jacobi::Jacobi, Scale};
use std::path::PathBuf;

const THREADS: [usize; 2] = [2, 4];

/// Tiny shadow-checked machine: 2×2 mesh per socket, so `numa2` runs
/// eight cores split across the inter-socket link.
fn tiny(protocol: ProtocolKind, topology: Topology) -> MachineConfig {
    let mut cfg = MachineConfig::scaled().with_shadow_check(true);
    cfg.ncores = 4;
    cfg.mesh_k = 2;
    cfg.with_protocol(protocol).with_topology(topology)
}

fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Jacobi {
            n: 24,
            iters: 2,
            blocks: 4,
            ..Jacobi::new(Scale::Test)
        }),
        Box::new(Histo::new(Scale::Test)),
    ]
}

struct EngineRun {
    key: Option<String>,
    out: DriverOutput,
    rec: Recorder,
}

fn run_engine(
    w: &dyn Workload,
    cfg: MachineConfig,
    mode: CoherenceMode,
    engine: Engine,
) -> EngineRun {
    let mut rec = Recorder::default();
    let driver = Driver::new(cfg, mode, w.build(), None, Some(&mut rec));
    let (key, out) = driver.finish_engine_keyed(engine, Some(&mut rec));
    EngineRun { key, out, rec }
}

fn dump_dir() -> PathBuf {
    match std::env::var_os("RACCD_CHECK_DUMP_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("target").join("raccd-check-counterexamples"),
    }
}

fn dump_counterexample(
    w: &dyn Workload,
    protocol: ProtocolKind,
    topology: Topology,
    mode: CoherenceMode,
    threads: usize,
    detail: &str,
) -> String {
    let dir = dump_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!(
        "protocol-diff-{}-{}-{}-{mode}-t{threads}-{}.txt",
        w.name(),
        protocol.label(),
        topology.label(),
        std::process::id()
    ));
    let text = format!(
        "# parallel-vs-serial divergence (protocol variant)\n\
         workload = {}\nprotocol = {protocol}\ntopology = {topology}\n\
         mode = {mode}\nthreads = {threads}\n\
         # reproduce: cargo test -p raccd-check --test protocol_differential\n\
         {detail}\n",
        w.name(),
    );
    let _ = std::fs::write(&path, text);
    format!("{} (counterexample: {})", detail, path.display())
}

fn sweep(protocol: ProtocolKind, topology: Topology) {
    let cfg = tiny(protocol, topology);
    let mut failures = String::new();
    for w in workloads() {
        for mode in [CoherenceMode::Raccd, CoherenceMode::FullCoh] {
            let serial = run_engine(w.as_ref(), cfg, mode, Engine::Serial);
            assert!(serial.key.is_some(), "shadow checker attached");
            for threads in THREADS {
                let par = run_engine(w.as_ref(), cfg, mode, Engine::EpochParallel { threads });
                let mut detail = String::new();
                if par.out.stats != serial.out.stats {
                    detail.push_str(&format!(
                        "Stats diverged:\n  serial: {:?}\n  par{threads}: {:?}\n",
                        serial.out.stats, par.out.stats
                    ));
                }
                if par.key != serial.key {
                    detail.push_str(&format!(
                        "shadow state_key diverged:\n  serial: {:?}\n  par{threads}: {:?}\n",
                        serial.key, par.key
                    ));
                }
                if par.rec.events() != serial.rec.events() {
                    detail.push_str("telemetry event stream diverged\n");
                }
                if !detail.is_empty() {
                    failures.push_str(&format!(
                        "{} {protocol}@{topology} under {mode}: {}\n",
                        w.name(),
                        dump_counterexample(w.as_ref(), protocol, topology, mode, threads, &detail)
                    ));
                }
            }
        }
    }
    assert!(failures.is_empty(), "{failures}");
}

#[test]
fn mesi_mesh_parallel_matches_serial() {
    sweep(ProtocolKind::Mesi, Topology::Mesh);
}

#[test]
fn mesi_numa2_parallel_matches_serial() {
    sweep(ProtocolKind::Mesi, Topology::Numa2);
}

#[test]
fn mesif_mesh_parallel_matches_serial() {
    sweep(ProtocolKind::Mesif, Topology::Mesh);
}

#[test]
fn mesif_numa2_parallel_matches_serial() {
    sweep(ProtocolKind::Mesif, Topology::Numa2);
}

#[test]
fn moesi_mesh_parallel_matches_serial() {
    sweep(ProtocolKind::Moesi, Topology::Mesh);
}

#[test]
fn moesi_numa2_parallel_matches_serial() {
    sweep(ProtocolKind::Moesi, Topology::Numa2);
}

/// The variants must actually *be* variants: under FullCoh the three
/// protocols route a sharing-heavy workload differently (MESIF's clean
/// F-supplies and MOESI's writeback-free O downgrades change the traffic
/// mix), so their serial Stats must not all coincide.
#[test]
fn protocols_differentiate_under_fullcoh() {
    let w = Jacobi {
        n: 24,
        iters: 2,
        blocks: 4,
        ..Jacobi::new(Scale::Test)
    };
    let stats: Vec<_> = ProtocolKind::ALL
        .iter()
        .map(|&p| {
            run_engine(
                &w,
                tiny(p, Topology::Mesh),
                CoherenceMode::FullCoh,
                Engine::Serial,
            )
            .out
            .stats
        })
        .collect();
    assert!(
        stats.iter().any(|s| s != &stats[0]),
        "MESI, MESIF and MOESI produced identical Stats on a sharing workload"
    );
}

/// numa2 must actually cross the link: the same workload on the same
/// protocol reports cross-link message crossings only on the 2-socket
/// topology, and its cycle count differs from the single mesh.
#[test]
fn numa2_differentiates_from_mesh() {
    let w = Histo::new(Scale::Test);
    let mesh = run_engine(
        &w,
        tiny(ProtocolKind::Mesi, Topology::Mesh),
        CoherenceMode::FullCoh,
        Engine::Serial,
    );
    let numa = run_engine(
        &w,
        tiny(ProtocolKind::Mesi, Topology::Numa2),
        CoherenceMode::FullCoh,
        Engine::Serial,
    );
    assert_ne!(
        mesh.out.stats.cycles, numa.out.stats.cycles,
        "inter-socket link latency must be visible in cycles"
    );
}
