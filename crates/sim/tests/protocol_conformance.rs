//! Protocol-conformance tests: exact event sequences for the canonical
//! coherence scenarios, via the event recorder.

use raccd_mem::VAddr;
use raccd_sim::{CoherenceEvent, L1LookupResult, Machine, MachineConfig};

fn machine() -> Machine {
    let mut cfg = MachineConfig::scaled();
    cfg.record_events = true;
    Machine::new(cfg)
}

fn access(m: &mut Machine, core: usize, vaddr: u64, write: bool, nc: bool, now: u64) {
    let (paddr, _) = m.translate(core, VAddr(vaddr));
    let block = paddr.block();
    if let L1LookupResult::Miss = m.l1_lookup(core, block, write, now) {
        m.miss_fill(core, block, write, nc, now);
    }
}

fn block_of(m: &mut Machine, vaddr: u64) -> raccd_mem::BlockAddr {
    m.translate(0, VAddr(vaddr)).0.block()
}

/// The recorded protocol events without their cycle stamps (these tests
/// assert on sequence, not timing).
fn untimed(m: &Machine) -> Vec<CoherenceEvent> {
    m.events().iter().map(|te| te.ev).collect()
}

#[test]
fn read_read_write_sequence() {
    let mut m = machine();
    let a = 0x10_0000u64;
    access(&mut m, 0, a, false, false, 0); // GetS → E (fill)
    access(&mut m, 1, a, false, false, 1); // GetS → S (forward from owner)
    access(&mut m, 0, a, true, false, 2); // write hit S → upgrade
    let b = block_of(&mut m, a);
    assert_eq!(
        untimed(&m),
        [
            CoherenceEvent::CoherentFill {
                core: 0,
                block: b,
                write: false,
                from_owner: false
            },
            CoherenceEvent::CoherentFill {
                core: 1,
                block: b,
                write: false,
                from_owner: true
            },
            CoherenceEvent::Upgrade { core: 0, block: b },
        ]
    );
}

#[test]
fn nc_lifecycle_sequence() {
    let mut m = machine();
    let a = 0x20_0000u64;
    access(&mut m, 2, a, true, true, 0); // NC write fill
    m.flush_nc(2, 1); // raccd_invalidate
    access(&mut m, 3, a, false, false, 2); // coherent read → NC→coherent
    access(&mut m, 4, a, false, true, 3); // NC read → coherent→NC
    let b = block_of(&mut m, a);
    assert_eq!(
        untimed(&m),
        [
            CoherenceEvent::NcFill {
                core: 2,
                block: b,
                write: true
            },
            CoherenceEvent::FlushNc { core: 2, lines: 1 },
            CoherenceEvent::NcToCoherent { block: b },
            CoherenceEvent::CoherentFill {
                core: 3,
                block: b,
                write: false,
                from_owner: false
            },
            CoherenceEvent::CoherentToNc { block: b },
            CoherenceEvent::NcFill {
                core: 4,
                block: b,
                write: false
            },
        ]
    );
}

#[test]
fn write_write_forwards_dirty_data() {
    let mut m = machine();
    let a = 0x30_0000u64;
    access(&mut m, 0, a, true, false, 0); // M in core 0
    access(&mut m, 1, a, true, false, 1); // GetX: data from owner
    let b = block_of(&mut m, a);
    assert_eq!(
        untimed(&m),
        [
            CoherenceEvent::CoherentFill {
                core: 0,
                block: b,
                write: true,
                from_owner: false
            },
            CoherenceEvent::CoherentFill {
                core: 1,
                block: b,
                write: true,
                from_owner: true
            },
        ]
    );
}

#[test]
fn dir_eviction_event_emitted_under_pressure() {
    let mut cfg = MachineConfig::scaled().with_dir_ratio(256);
    cfg.record_events = true;
    cfg.llc_entries_per_bank = 64;
    let mut m = Machine::new(cfg);
    for i in 0..64u64 {
        access(&mut m, 0, 0x10_0000 + i * 1024, false, false, i);
    }
    assert!(m
        .events()
        .iter()
        .any(|e| matches!(e.ev, CoherenceEvent::DirEviction { .. })));
}

#[test]
fn recording_disabled_by_default() {
    let mut m = Machine::new(MachineConfig::scaled());
    access(&mut m, 0, 0x10_0000, true, false, 0);
    m.flush_nc(0, 1);
    assert!(m.events().is_empty());
}

#[test]
fn clear_events_resets_log() {
    let mut m = machine();
    access(&mut m, 0, 0x10_0000, false, false, 0);
    assert!(!m.events().is_empty());
    m.clear_events();
    assert!(m.events().is_empty());
}
