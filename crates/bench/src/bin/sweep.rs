//! Generic sweep CLI: run any benchmark × mode × directory-ratio matrix and
//! print every metric as TSV.
//!
//! ```text
//! cargo run --release -p raccd-bench --bin sweep -- \
//!     [--scale test|bench|paper] [--bench Jacobi,...] [--ratios 1,8,256] \
//!     [--modes FullCoh,PT,TLB,RaCCD] [--adr] [--smt N] [--wt] \
//!     [--protocol mesi|mesif|moesi] [--topology mesh|numa2] \
//!     [--contention] [--permuted] [--steal] [--telemetry out/] \
//!     [--engine serial|parallel [--threads N]]
//! ```
//!
//! With `--telemetry <dir>` every job additionally runs with a recorder and
//! writes its artifact set (Perfetto trace, JSONL events, CSV time-series,
//! histogram report) into a per-job subdirectory of `dir`.

use raccd_bench::{
    bench_names, config_from_args, engine_from_args, run_jobs_with_telemetry, scale_from_args,
    telemetry_dir_from_args, Job,
};
use raccd_core::CoherenceMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = scale_from_args(&args);
    let names = bench_names(scale);

    let pick = |flag: &str| -> Option<Vec<String>> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.split(',').map(|x| x.to_string()).collect())
    };

    let bench_sel: Vec<usize> = pick("--bench")
        .map(|sel| {
            sel.iter()
                .map(|n| {
                    names
                        .iter()
                        .position(|b| b.eq_ignore_ascii_case(n))
                        .unwrap_or_else(|| panic!("unknown benchmark {n}; have {names:?}"))
                })
                .collect()
        })
        .unwrap_or_else(|| (0..names.len()).collect());

    let ratios: Vec<usize> = pick("--ratios")
        .map(|r| r.iter().map(|x| x.parse().expect("ratio")).collect())
        .unwrap_or_else(|| raccd_sim::DIR_RATIOS.to_vec());

    let modes: Vec<CoherenceMode> = pick("--modes")
        .map(|m| {
            m.iter()
                .map(|x| match x.to_ascii_lowercase().as_str() {
                    "fullcoh" => CoherenceMode::FullCoh,
                    "pt" | "pagetable" => CoherenceMode::PageTable,
                    "tlb" | "tlbclass" => CoherenceMode::TlbClass,
                    "raccd" => CoherenceMode::Raccd,
                    other => panic!("unknown mode {other}"),
                })
                .collect()
        })
        .unwrap_or_else(|| CoherenceMode::ALL.to_vec());

    let adr = args.iter().any(|a| a == "--adr");
    let mut base_cfg = config_from_args(scale, &args);
    if let Some(v) = pick("--smt").and_then(|v| v.first().cloned()) {
        base_cfg = base_cfg.with_smt(v.parse().expect("smt ways"));
    }
    if args.iter().any(|a| a == "--wt") {
        base_cfg = base_cfg.with_write_through(true);
    }
    if args.iter().any(|a| a == "--contention") {
        base_cfg = base_cfg.with_contention(true);
    }
    if args.iter().any(|a| a == "--permuted") {
        base_cfg.permuted_pages = true;
    }
    if args.iter().any(|a| a == "--steal") {
        base_cfg.sched = raccd_sim::SchedKind::Steal;
    }

    let engine = engine_from_args(&args);
    let mut jobs = Vec::new();
    for &b in &bench_sel {
        for &mode in &modes {
            for &ratio in &ratios {
                jobs.push(Job {
                    bench_idx: b,
                    mode,
                    ratio,
                    adr,
                    engine,
                });
            }
        }
    }

    let telemetry = telemetry_dir_from_args(&args);
    eprintln!(
        "running {} simulations at scale {scale} ({} protocol, {} topology)...",
        jobs.len(),
        base_cfg.protocol.label(),
        base_cfg.topology.label(),
    );
    println!(
        "# machine: protocol={} topology={} sched={} ncores={}",
        base_cfg.protocol.label(),
        base_cfg.topology.label(),
        base_cfg.sched.label(),
        base_cfg.ncores,
    );
    let t0 = std::time::Instant::now();
    let results = run_jobs_with_telemetry(scale, base_cfg, &jobs, telemetry.as_deref());
    eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
    if let Some(dir) = &telemetry {
        eprintln!("telemetry artifacts under {}", dir.display());
    }

    println!(
        "benchmark\tmode\tratio\tadr\tcycles\tdir_accesses\tdir_evictions\tllc_hit_ratio\tnoc_traffic\tl1_writebacks\tdir_occupancy\tnc_pct\ttasks\trefs\tutilization"
    );
    for r in &results {
        let s = &r.result.stats;
        println!(
            "{}\t{}\t1:{}\t{}\t{}\t{}\t{}\t{:.4}\t{}\t{}\t{:.4}\t{:.1}\t{}\t{}\t{:.3}",
            r.name,
            r.job.mode,
            r.job.ratio,
            r.job.adr,
            s.cycles,
            s.dir_accesses,
            s.dir_evictions,
            s.llc_hit_ratio(),
            s.noc_traffic,
            s.l1_writebacks,
            s.dir_avg_occupancy,
            r.result.census.noncoherent_pct(),
            r.result.tasks,
            s.refs_processed,
            s.utilization(),
        );
    }
}
