//! The non-coherent block census behind Figure 2.
//!
//! "In Figure 2 a block is marked as coherent if it is ever accessed as
//! coherent during the execution." The census tracks, per physical block
//! touched, whether any access to it was coherent; the non-coherent
//! percentage is then `blocks never accessed coherently / blocks touched`.

use raccd_mem::BlockAddr;
use std::collections::HashMap;

/// Per-block ever-accessed / ever-coherent tracking.
#[derive(Clone, Debug, Default)]
pub struct Census {
    /// block → ever accessed coherently.
    blocks: HashMap<u64, bool>,
}

/// Aggregated census results.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CensusSummary {
    /// Distinct physical blocks touched.
    pub total_blocks: u64,
    /// Blocks never accessed coherently.
    pub noncoherent_blocks: u64,
}

impl CensusSummary {
    /// Figure 2's metric: percentage of non-coherent blocks.
    pub fn noncoherent_pct(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            100.0 * self.noncoherent_blocks as f64 / self.total_blocks as f64
        }
    }
}

impl Census {
    /// Empty census.
    pub fn new() -> Self {
        Census::default()
    }

    /// Record one access. `coherent` is whether the access used the
    /// coherent path (a coherent L1 hit or a coherent fill).
    #[inline]
    pub fn record(&mut self, block: BlockAddr, coherent: bool) {
        let e = self.blocks.entry(block.0).or_insert(false);
        *e |= coherent;
    }

    /// Summarise.
    pub fn summary(&self) -> CensusSummary {
        let total = self.blocks.len() as u64;
        let coherent = self.blocks.values().filter(|&&c| c).count() as u64;
        CensusSummary {
            total_blocks: total,
            noncoherent_blocks: total - coherent,
        }
    }
}

impl raccd_snap::Snap for Census {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        self.blocks.save(w);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        Ok(Census {
            blocks: Snap::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ever_coherent_sticks() {
        let mut c = Census::new();
        c.record(BlockAddr(1), false);
        c.record(BlockAddr(1), true);
        c.record(BlockAddr(1), false);
        let s = c.summary();
        assert_eq!(s.total_blocks, 1);
        assert_eq!(s.noncoherent_blocks, 0);
    }

    #[test]
    fn percentage() {
        let mut c = Census::new();
        for b in 0..8u64 {
            c.record(BlockAddr(b), b < 2); // 2 coherent, 6 non-coherent
        }
        let s = c.summary();
        assert_eq!(s.total_blocks, 8);
        assert_eq!(s.noncoherent_blocks, 6);
        assert!((s.noncoherent_pct() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn empty_census_is_zero() {
        assert_eq!(Census::new().summary().noncoherent_pct(), 0.0);
    }
}
