//! Machine-scaling tests: the simulator is parameterised in core count
//! (mesh k×k), so RaCCD's claims can be examined beyond Table I's 16
//! cores — the motivation of the paper is precisely directory scalability
//! "with increasing core counts" (§I).

use raccd::core::{CoherenceMode, Experiment};
use raccd::sim::MachineConfig;
use raccd::workloads::{jacobi::Jacobi, Scale};

fn machine(cores: usize) -> MachineConfig {
    let mut cfg = MachineConfig::scaled();
    cfg.mesh_k = (cores as f64).sqrt() as usize;
    cfg.ncores = cores;
    // Keep total LLC constant so per-bank capacity shrinks with cores.
    cfg.llc_entries_per_bank = 32768 / cores;
    cfg
}

#[test]
fn four_core_machine_works() {
    let w = Jacobi::new(Scale::Test);
    for mode in CoherenceMode::ALL {
        let run = Experiment::new(machine(4), mode).run(&w);
        assert!(run.verified, "{mode}: {:?}", run.verify_error);
    }
}

#[test]
fn sixty_four_core_machine_works() {
    let w = Jacobi::new(Scale::Test);
    let run = Experiment::new(machine(64), CoherenceMode::Raccd).run(&w);
    assert!(run.verified, "{:?}", run.verify_error);
    assert_eq!(run.stats.contexts, 64);
}

#[test]
fn raccd_directory_reduction_survives_scaling() {
    // The headline effect must hold at every core count: RaCCD needs a
    // small fraction of the baseline's directory accesses.
    let w = Jacobi::new(Scale::Test);
    for cores in [4usize, 16, 64] {
        let full = Experiment::new(machine(cores), CoherenceMode::FullCoh).run(&w);
        let raccd = Experiment::new(machine(cores), CoherenceMode::Raccd).run(&w);
        let ratio = raccd.stats.dir_accesses as f64 / full.stats.dir_accesses.max(1) as f64;
        assert!(
            ratio < 0.3,
            "{cores} cores: RaCCD/FullCoh dir accesses = {ratio:.3}"
        );
    }
}

#[test]
fn utilization_reported_and_bounded() {
    let w = Jacobi::new(Scale::Test);
    let run = Experiment::new(MachineConfig::scaled(), CoherenceMode::Raccd).run(&w);
    let u = run.stats.utilization();
    assert!(u > 0.0 && u <= 1.0, "utilization {u}");
}

#[test]
fn pipelined_workload_has_lower_utilization_than_parallel() {
    use raccd::workloads::gauss::Gauss;
    let cfg = MachineConfig::scaled();
    let jacobi = Experiment::new(cfg, CoherenceMode::FullCoh)
        .run(&Jacobi::new(Scale::Test))
        .stats
        .utilization();
    let gauss = Experiment::new(cfg, CoherenceMode::FullCoh)
        .run(&Gauss::new(Scale::Test))
        .stats
        .utilization();
    assert!(
        gauss < jacobi,
        "pipelined Gauss {gauss:.3} vs parallel Jacobi {jacobi:.3}"
    );
}
