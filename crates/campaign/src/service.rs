//! The campaign orchestrator: ledger-backed admission, pooled execution,
//! retries, and reconciliation.
//!
//! A [`Campaign`] drives batches of [`JobSpec`]s to completion:
//!
//! 1. **Admission** ([`Campaign::submit`]): each seeded job is
//!    fingerprinted and checked against everything the ledger already
//!    knows. Known keys dedup (a completed job's cached digest is the
//!    result — it is never re-executed); new keys are admitted up to the
//!    `queue_cap` backpressure bound and deterministically *shed* beyond
//!    it. Every decision is a durable ledger record before it takes
//!    effect.
//! 2. **Execution** ([`Campaign::run`]): admitted jobs are leased to the
//!    worker pool. A job simulates under its spec's engine, warm-starting
//!    from the shared [`SnapshotPool`] when the spec has a warm-up phase.
//!    Failures (fault detection, per-job timeout, worker panic) burn one
//!    attempt; attempts below the retry budget are requeued after a
//!    bounded-exponential backoff, the rest become terminal `failed`
//!    records.
//! 3. **Reconciliation** ([`Campaign::reconcile`]): the ledger file is
//!    re-replayed from disk and compared against the in-memory result
//!    cache — at most one `done` per key, no admitted key unaccounted.
//!
//! Crash safety falls out of the record ordering: results exist only as
//! `done` records, so a `kill -9` anywhere leaves each job either
//! completed-with-result or recoverable-as-queued. [`Campaign::open`] on
//! the survivor ledger resumes with zero duplicated and zero lost work.

use crate::ledger::{JobDigest, JobStatus, Ledger, LedgerState, Record};
use crate::pool::{panic_message, CancelToken, PoolCtx, PoolTask, WorkerPool};
use crate::snappool::{SnapPoolStats, SnapshotPool};
use crate::spec::{JobKey, JobSpec};
use crate::stats_digest;
use raccd_core::{Driver, Engine, SupervisedEnd};
use raccd_fault::{Backoff, Watchdog};
use raccd_obs::json::Obj;
use raccd_obs::{CampaignAction, Event};
use raccd_workloads::all_benchmarks;
use std::collections::BTreeMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Tunables of one campaign run.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Backpressure bound: maximum jobs admitted but not yet terminal.
    /// Submissions beyond it are deterministically shed.
    pub queue_cap: usize,
    /// Maximum execution attempts per job (1 = no retries).
    pub retry_budget: u32,
    /// Campaign-level retry backoff, in **milliseconds** (host time).
    pub backoff: Backoff,
    /// Per-job no-progress timeout in host milliseconds (0 = disabled).
    /// A job whose driver retires no task for this long is aborted.
    pub timeout_ms: u64,
    /// Supervision slice in simulated cycles: how often a running job
    /// polls for cancellation / timeout.
    pub slice: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_cap: 1024,
            retry_budget: 3,
            backoff: Backoff { base: 2, cap: 50 },
            timeout_ms: 0,
            slice: 50_000,
        }
    }
}

/// Outcome counters of one [`Campaign::submit`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubmitSummary {
    /// Jobs admitted to the queue.
    pub admitted: u64,
    /// Jobs whose key the campaign already knew (cache/queue hit).
    pub deduped: u64,
    /// Jobs rejected by backpressure.
    pub shed: u64,
}

/// In-memory mirror of the ledger's job state (the ledger is the truth;
/// this is the fast path).
#[derive(Default)]
struct CampState {
    /// Configuration per fingerprint (for scheduling and resume).
    specs: BTreeMap<u64, JobSpec>,
    /// Last-known status per key.
    status: BTreeMap<JobKey, JobStatus>,
    /// Attempts started per key (survives resume).
    attempts: BTreeMap<JobKey, u32>,
    /// Admitted-but-not-terminal count (the backpressure gauge).
    pending: u64,
    dedup_hits: u64,
    shed: u64,
    /// Driver runs actually performed by *this process*.
    executions: u64,
    retries: u64,
}

struct Inner {
    config: CampaignConfig,
    ledger: Mutex<Ledger>,
    pool: WorkerPool,
    snaps: SnapshotPool,
    state: Mutex<CampState>,
    events: Mutex<Vec<Event>>,
    start: Instant,
}

/// A crash-safe simulation campaign over one ledger file.
pub struct Campaign {
    inner: Arc<Inner>,
}

impl Inner {
    fn state(&self) -> MutexGuard<'_, CampState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append a ledger record; worker threads have no error channel, so
    /// callers there use [`Inner::append_or_panic`].
    fn append(&self, rec: &Record) -> io::Result<u64> {
        self.ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .append(rec)
    }

    fn append_or_panic(&self, rec: &Record) {
        self.append(rec).expect("ledger append failed");
    }

    fn emit(&self, action: CampaignAction, key: JobKey) {
        let queue_depth = self.state().pending as u32;
        let ev = Event::Campaign {
            cycle: self.start.elapsed().as_millis() as u64,
            action,
            fingerprint: key.fingerprint,
            seed: key.seed,
            queue_depth,
        };
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ev);
    }
}

impl Campaign {
    /// Open (or resume) the campaign whose ledger lives at `path`. A
    /// pre-existing ledger is replayed: completed jobs load the result
    /// cache, mid-flight and queued jobs become pending again, and
    /// attempt counts carry over so retry budgets keep their meaning
    /// across the crash.
    pub fn open(path: &Path, config: CampaignConfig) -> io::Result<Campaign> {
        let (ledger, replayed) = Ledger::open(path)?;
        let mut st = CampState {
            dedup_hits: replayed.dedup_hits,
            ..CampState::default()
        };
        for (fp, canonical) in &replayed.specs {
            let spec = JobSpec::parse(canonical)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            st.specs.insert(*fp, spec);
        }
        for (key, job) in &replayed.jobs {
            let status = match &job.status {
                // A non-terminal failure's requeue record died with the
                // tail: it is pending again, attempts preserved.
                JobStatus::Failed { .. } if job.attempts < config.retry_budget.max(1) => {
                    JobStatus::Queued
                }
                other => other.clone(),
            };
            if matches!(status, JobStatus::Queued) {
                st.pending += 1;
            }
            if matches!(status, JobStatus::Shed) {
                st.shed += 1;
            }
            st.attempts.insert(*key, job.attempts);
            st.status.insert(*key, status);
        }
        let inner = Arc::new(Inner {
            pool: WorkerPool::new(config.workers, config.queue_cap.max(1)),
            config,
            ledger: Mutex::new(ledger),
            snaps: SnapshotPool::default(),
            state: Mutex::new(st),
            events: Mutex::new(Vec::new()),
            start: Instant::now(),
        });
        Ok(Campaign { inner })
    }

    /// Submit a batch: dedup against everything the ledger knows, admit
    /// up to the backpressure bound, shed the rest. Each decision is
    /// durable before this returns.
    pub fn submit(&self, spec: &JobSpec) -> io::Result<SubmitSummary> {
        spec.bench_idx()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let canonical = spec.canonical();
        let mut out = SubmitSummary::default();
        for key in spec.keys() {
            let mut st = self.inner.state();
            st.specs
                .entry(key.fingerprint)
                .or_insert_with(|| JobSpec::parse(&canonical).expect("canonical form parses"));
            if st.status.contains_key(&key) {
                st.dedup_hits += 1;
                drop(st);
                self.inner.append(&Record::Deduped { key })?;
                self.inner.emit(CampaignAction::Dedup, key);
                out.deduped += 1;
            } else if st.pending >= self.inner.config.queue_cap as u64 {
                st.status.insert(key, JobStatus::Shed);
                st.shed += 1;
                drop(st);
                self.inner.append(&Record::Shed { key })?;
                self.inner.emit(CampaignAction::Shed, key);
                out.shed += 1;
            } else {
                st.status.insert(key, JobStatus::Queued);
                st.pending += 1;
                drop(st);
                self.inner.append(&Record::Enqueued {
                    key,
                    spec: canonical.clone(),
                })?;
                self.inner.emit(CampaignAction::Enqueue, key);
                out.admitted += 1;
            }
        }
        Ok(out)
    }

    /// Execute every pending job to a terminal state (done, or failed
    /// with the retry budget spent), then reconcile ledger against
    /// results and return the campaign report.
    pub fn run(&self) -> io::Result<CampaignReport> {
        let queued: Vec<(JobKey, u32)> = {
            let st = self.inner.state();
            st.status
                .iter()
                .filter(|(_, s)| matches!(s, JobStatus::Queued))
                .map(|(k, _)| (*k, st.attempts.get(k).copied().unwrap_or(0) + 1))
                .collect()
        };
        for (key, attempt) in queued {
            schedule(&self.inner, key, attempt);
        }
        self.inner.pool.drain();
        // `run_one` catches job panics itself; anything surfacing here
        // escaped the per-job boundary (ledger I/O, bookkeeping bugs).
        for (label, msg) in self.inner.pool.take_panics() {
            self.inner.append(&Record::Note {
                text: format!("worker panic [{label}]: {msg}"),
            })?;
        }
        self.inner
            .ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .sync()?;
        let reconcile = self.reconcile()?;
        Ok(self.report(reconcile))
    }

    /// Cooperatively cancel: queued leases are dropped, running jobs
    /// abort at their next supervision slice. Cancelled work writes no
    /// terminal record — exactly like a crash, it resumes as queued.
    pub fn cancel(&self) {
        self.inner.pool.cancel();
    }

    /// Re-replay the ledger from disk and prove it consistent with the
    /// in-memory result cache.
    pub fn reconcile(&self) -> io::Result<ReconcileReport> {
        let path = self
            .inner
            .ledger
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .path()
            .to_path_buf();
        let bytes = std::fs::read(&path)?;
        let replay = LedgerState::replay(&bytes);
        let mut rep = ReconcileReport::default();
        {
            let st = self.inner.state();
            for (key, job) in &replay.jobs {
                match &job.status {
                    JobStatus::Done(digest) => {
                        rep.done += 1;
                        if job.done_records > 1 {
                            rep.duplicate_completions += 1;
                        }
                        match st.status.get(key) {
                            Some(JobStatus::Done(d)) if d == digest => {}
                            _ => rep.mismatches += 1,
                        }
                    }
                    JobStatus::Queued => rep.lost_jobs += 1,
                    JobStatus::Failed { .. } => rep.failed += 1,
                    JobStatus::Shed => rep.shed += 1,
                }
            }
            for (key, status) in &st.status {
                if matches!(status, JobStatus::Done(_)) && !replay.jobs.contains_key(key) {
                    rep.mismatches += 1;
                }
            }
        }
        rep.consistent =
            rep.duplicate_completions == 0 && rep.lost_jobs == 0 && rep.mismatches == 0;
        self.inner.append(&Record::Note {
            text: format!(
                "reconciled done={} failed={} shed={} dup={} lost={} mismatch={}",
                rep.done,
                rep.failed,
                rep.shed,
                rep.duplicate_completions,
                rep.lost_jobs,
                rep.mismatches
            ),
        })?;
        Ok(rep)
    }

    fn report(&self, reconcile: ReconcileReport) -> CampaignReport {
        let st = self.inner.state();
        let snaps = self.inner.snaps.stats();
        let mut done = 0;
        let mut failed = 0;
        for s in st.status.values() {
            match s {
                JobStatus::Done(_) => done += 1,
                JobStatus::Failed { .. } => failed += 1,
                _ => {}
            }
        }
        CampaignReport {
            jobs: st.status.len() as u64,
            done,
            failed,
            shed: st.shed,
            dedup_hits: st.dedup_hits,
            executions: st.executions,
            retries: st.retries,
            snap: snaps,
            elapsed_ms: self.inner.start.elapsed().as_millis() as u64,
            reconcile,
        }
    }

    /// The cached result digests, in key order.
    pub fn results(&self) -> Vec<(JobKey, JobDigest)> {
        self.inner
            .state()
            .status
            .iter()
            .filter_map(|(k, s)| match s {
                JobStatus::Done(d) => Some((*k, d.clone())),
                _ => None,
            })
            .collect()
    }

    /// Terminal failures, in key order.
    pub fn failures(&self) -> Vec<(JobKey, String)> {
        self.inner
            .state()
            .status
            .iter()
            .filter_map(|(k, s)| match s {
                JobStatus::Failed { err } => Some((*k, err.clone())),
                _ => None,
            })
            .collect()
    }

    /// The campaign lifecycle event stream recorded so far (feed to
    /// [`raccd_obs::write_events_jsonl`] /
    /// [`raccd_obs::write_campaign_depth_csv`]).
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Snapshot-pool hit/miss counters.
    pub fn snap_stats(&self) -> SnapPoolStats {
        self.inner.snaps.stats()
    }
}

/// Lease `key` to the pool for execution attempt `attempt`.
fn schedule(inner: &Arc<Inner>, key: JobKey, attempt: u32) {
    let captured = Arc::clone(inner);
    // Past the admission gate, scheduling bypasses the pool's own bound:
    // the in-flight volume is already capped at `queue_cap × retry_budget`.
    inner.pool.submit_unbounded(PoolTask {
        label: format!("campaign {}", key.label()),
        run: Box::new(move |ctx| run_one(&captured, ctx, key, attempt)),
    });
}

/// One execution attempt, on a worker thread: lease → run → done/retry.
fn run_one(inner: &Arc<Inner>, ctx: &PoolCtx, key: JobKey, attempt: u32) {
    if ctx.cancel.cancelled() {
        return; // lease never taken; resumes as queued
    }
    let spec = inner.state().specs.get(&key.fingerprint).cloned();
    let Some(spec) = spec else {
        inner.append_or_panic(&Record::Note {
            text: format!("no spec for {}", key.label()),
        });
        return;
    };
    inner.append_or_panic(&Record::Leased {
        key,
        attempt,
        worker: ctx.worker,
    });
    {
        let mut st = inner.state();
        st.executions += 1;
        st.attempts.insert(key, attempt);
    }
    inner.emit(CampaignAction::Lease, key);

    let result = catch_unwind(AssertUnwindSafe(|| {
        execute_job(inner, &spec, key.seed, &ctx.cancel)
    }))
    .unwrap_or_else(|p| Err(format!("panic: {}", panic_message(&*p))));

    match result {
        Ok(digest) => {
            {
                let mut st = inner.state();
                st.status.insert(key, JobStatus::Done(digest.clone()));
                st.pending -= 1;
            }
            inner.append_or_panic(&Record::Done { key, digest });
            inner.emit(CampaignAction::Complete, key);
        }
        // Cancellation is crash-shaped on purpose: no terminal record,
        // the dangling lease recovers to queued on resume.
        Err(e) if e == "cancelled" => {}
        Err(err) => {
            inner.append_or_panic(&Record::Failed {
                key,
                attempt,
                err: err.clone(),
            });
            if attempt < inner.config.retry_budget {
                let delay_ms = inner.config.backoff.delay(attempt);
                if delay_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                }
                inner.state().retries += 1;
                inner.append_or_panic(&Record::Retry {
                    key,
                    attempt: attempt + 1,
                    delay_ms,
                });
                inner.emit(CampaignAction::Retry, key);
                schedule(inner, key, attempt + 1);
            } else {
                {
                    let mut st = inner.state();
                    st.status.insert(key, JobStatus::Failed { err });
                    st.pending -= 1;
                }
                inner.emit(CampaignAction::Fail, key);
            }
        }
    }
}

/// Execute one seeded job under campaign supervision, warm-starting from
/// the shared snapshot pool when the spec has a warm-up phase.
fn execute_job(
    inner: &Inner,
    spec: &JobSpec,
    seed: u64,
    cancel: &CancelToken,
) -> Result<JobDigest, String> {
    let idx = spec.bench_idx()?;
    let scale = spec.scale;
    let cfg = spec.machine_config();
    let mode = spec.mode;
    let build = move || all_benchmarks(scale)[idx].build();
    let driver = if spec.warmup > 0 {
        let warmup = spec.warmup;
        let plan = spec.fault_plan();
        let snap = inner.snaps.get_or_build(spec.fingerprint(), || {
            let mut warm = Driver::new(cfg, mode, build(), plan, None);
            warm.run_until(warmup, None);
            warm.snapshot()
        });
        Driver::restore(cfg, mode, build(), &snap).map_err(|e| format!("restore: {e:?}"))?
    } else {
        Driver::new(cfg, mode, build(), spec.fault_plan(), None)
    };
    finish_supervised(
        driver,
        seed,
        spec.engine,
        inner.config.slice,
        inner.config.timeout_ms,
        Some(cancel),
    )
}

/// Shared tail of the warm and cold execution paths: reseed the fault
/// plane at the warm-up boundary (the convention `warmstart` proves
/// bit-identical between restored and cold drivers) and run to the end
/// under supervision.
fn finish_supervised(
    mut driver: Driver,
    seed: u64,
    engine: Engine,
    slice: u64,
    timeout_ms: u64,
    cancel: Option<&CancelToken>,
) -> Result<JobDigest, String> {
    driver.reseed_faults(seed);
    let started = Instant::now();
    let mut watchdog = (timeout_ms > 0).then(|| Watchdog::new(timeout_ms));
    let mut last_done = 0usize;
    let (end, state_key, out) = driver.finish_engine_supervised(engine, slice, |d| {
        if cancel.is_some_and(CancelToken::cancelled) {
            return Err("cancelled".into());
        }
        if let Some(w) = watchdog.as_mut() {
            let now = started.elapsed().as_millis() as u64;
            let done = d.completed_tasks();
            if done > last_done {
                last_done = done;
                w.note_progress(now);
            }
            if w.expired(now) {
                return Err(format!("timeout: no task retired within {timeout_ms}ms"));
            }
        }
        Ok(())
    });
    match end {
        SupervisedEnd::Aborted(reason) => Err(reason),
        SupervisedEnd::Completed => {
            let out = out.expect("completed supervised run yields output");
            if let Some(d) = out.fault.as_ref().and_then(|f| f.detected) {
                return Err(format!("detected: {d:?}"));
            }
            Ok(JobDigest {
                cycles: out.stats.cycles,
                tasks: out.stats.tasks_executed,
                stats_digest: stats_digest(&out.stats),
                state_key,
            })
        }
    }
}

/// The serial oracle for the differential suite: execute `(spec, seed)`
/// cold (no snapshot pool) with no pool, no ledger, no timeout. Campaign
/// results must be bit-identical to this.
pub fn execute_job_direct(spec: &JobSpec, seed: u64) -> Result<JobDigest, String> {
    let idx = spec.bench_idx()?;
    let cfg = spec.machine_config();
    let mut driver = Driver::new(
        cfg,
        spec.mode,
        all_benchmarks(spec.scale)[idx].build(),
        spec.fault_plan(),
        None,
    );
    if spec.warmup > 0 {
        driver.run_until(spec.warmup, None);
    }
    finish_supervised(driver, seed, Engine::Serial, u64::MAX, 0, None)
}

/// Ledger-versus-results consistency proof (see [`Campaign::reconcile`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Jobs the ledger shows completed.
    pub done: u64,
    /// Jobs the ledger shows terminally failed.
    pub failed: u64,
    /// Jobs the ledger shows shed.
    pub shed: u64,
    /// Keys with more than one `done` record (must be 0).
    pub duplicate_completions: u64,
    /// Admitted keys still non-terminal in the ledger (must be 0 after a
    /// completed run; non-zero means work remains, e.g. after `cancel`).
    pub lost_jobs: u64,
    /// Ledger/memory digest disagreements (must be 0).
    pub mismatches: u64,
    /// All invariants held.
    pub consistent: bool,
}

/// End-of-run campaign summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignReport {
    /// Distinct job keys the campaign knows (done + failed + shed + pending).
    pub jobs: u64,
    /// Completed jobs with cached digests.
    pub done: u64,
    /// Terminal failures.
    pub failed: u64,
    /// Jobs shed by backpressure.
    pub shed: u64,
    /// Submissions answered from the cache/queue.
    pub dedup_hits: u64,
    /// Driver runs this process actually performed.
    pub executions: u64,
    /// Campaign-level retries performed.
    pub retries: u64,
    /// Warm-start snapshot pool counters.
    pub snap: SnapPoolStats,
    /// Host wall-clock since [`Campaign::open`], in milliseconds.
    pub elapsed_ms: u64,
    /// The reconciliation verdict.
    pub reconcile: ReconcileReport,
}

impl CampaignReport {
    /// Render as a single JSON object (the campaign bin's report file).
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("jobs", self.jobs)
            .u64("done", self.done)
            .u64("failed", self.failed)
            .u64("shed", self.shed)
            .u64("dedup_hits", self.dedup_hits)
            .u64("executions", self.executions)
            .u64("retries", self.retries)
            .u64("snap_hits", self.snap.hits)
            .u64("snap_misses", self.snap.misses)
            .u64("elapsed_ms", self.elapsed_ms)
            .u64(
                "duplicate_completions",
                self.reconcile.duplicate_completions,
            )
            .u64("lost_jobs", self.reconcile.lost_jobs)
            .u64("mismatches", self.reconcile.mismatches)
            .bool("consistent", self.reconcile.consistent)
            .render()
    }
}
