//! End-to-end snapshot fidelity: a run that checkpoints at cycle `k`,
//! serialises the checkpoint to bytes, decodes it back, restores and
//! finishes must be indistinguishable from the uninterrupted run — same
//! shadow state key, same `Stats`, same task count, same telemetry event
//! counts — across every workload and every evaluated system.

use raccd_core::{CoherenceMode, Driver};
use raccd_fault::FaultPlan;
use raccd_obs::{Recorder, RecorderConfig};
use raccd_sim::MachineConfig;
use raccd_snap::Snapshot;
use raccd_workloads::{all_benchmarks, Scale};

fn cfg() -> MachineConfig {
    MachineConfig::scaled().with_shadow_check(true)
}

/// Run to completion, returning (state key, output) — the key must be read
/// before `finish` tears the machine down.
fn run_to_end(mut driver: Driver) -> (String, raccd_core::DriverOutput) {
    while driver.step(None) {}
    let key = driver.shadow_state_key().expect("shadow checker attached");
    (key, driver.finish(None))
}

/// Snapshot at `k`, round-trip the snapshot through bytes, restore into a
/// freshly built program, finish.
fn run_split(
    mode: CoherenceMode,
    make: &dyn Fn() -> raccd_runtime::Program,
    plan: Option<FaultPlan>,
    k: u64,
) -> (String, raccd_core::DriverOutput) {
    let mut part1 = Driver::new(cfg(), mode, make(), plan, None);
    part1.run_until(k, None);
    let snap = part1.snapshot();
    let bytes = snap.to_bytes();
    let snap = Snapshot::from_bytes(&bytes).expect("snapshot decodes from its own bytes");
    let part2 = Driver::restore(cfg(), mode, make(), &snap).expect("snapshot restores");
    run_to_end(part2)
}

#[test]
fn restore_and_finish_matches_uninterrupted_everywhere() {
    let benches = all_benchmarks(Scale::Test);
    for w in &benches {
        for mode in [
            CoherenceMode::Raccd,
            CoherenceMode::PageTable,
            CoherenceMode::FullCoh,
        ] {
            let (ref_key, ref_out) = run_to_end(Driver::new(cfg(), mode, w.build(), None, None));
            let k = ref_out.stats.cycles / 2;
            let (split_key, split_out) = run_split(mode, &|| w.build(), None, k);
            let tag = format!("{} under {mode:?} split at {k}", w.name());
            assert_eq!(split_key, ref_key, "{tag}: shadow state key");
            assert_eq!(split_out.stats, ref_out.stats, "{tag}: stats");
            assert_eq!(split_out.tasks, ref_out.tasks, "{tag}: tasks");
            assert_eq!(split_out.edges, ref_out.edges, "{tag}: edges");
        }
    }
}

#[test]
fn restore_preserves_fault_machinery_mid_campaign() {
    let benches = all_benchmarks(Scale::Test);
    let w = &benches[0];
    let plan = FaultPlan {
        drop: 3e-4,
        dup: 1e-4,
        delay: 5e-4,
        dir_loss: 1e-4,
        task_fail: 3e-4,
        straggle: 1e-3,
        ..FaultPlan::default()
    };
    let (ref_key, ref_out) = run_to_end(Driver::new(
        cfg(),
        CoherenceMode::Raccd,
        w.build(),
        Some(plan),
        None,
    ));
    let k = ref_out.stats.cycles / 2;
    let (split_key, split_out) = run_split(CoherenceMode::Raccd, &|| w.build(), Some(plan), k);
    assert_eq!(split_key, ref_key, "faulty split: shadow state key");
    assert_eq!(split_out.stats, ref_out.stats, "faulty split: stats");
    let rf = ref_out.fault.expect("fault report");
    let sf = split_out.fault.expect("fault report");
    assert_eq!(sf.stats, rf.stats, "faulty split: fault counters");
    assert_eq!(sf.detected, rf.detected, "faulty split: detection");
    assert_eq!(sf.degraded, rf.degraded, "faulty split: degrade latch");
}

#[test]
fn restore_preserves_telemetry_event_stream_counts() {
    let benches = all_benchmarks(Scale::Test);
    let w = &benches[3]; // Jacobi: exercises wakeup chains and NC fills
    let mut cfg = cfg();
    cfg.record_events = true;
    let rc = || {
        Recorder::new(RecorderConfig {
            sample_interval: 2048,
            buffer_events: true,
        })
    };

    let mut ref_rec = rc();
    let driver = Driver::new(
        cfg,
        CoherenceMode::Raccd,
        w.build(),
        None,
        Some(&mut ref_rec),
    );
    let ref_out = driver.finish(Some(&mut ref_rec));

    // The split run shares ONE recorder across both halves, so the merged
    // stream must count exactly like the uninterrupted one.
    let k = ref_out.stats.cycles / 2;
    let mut split_rec = rc();
    let mut part1 = Driver::new(
        cfg,
        CoherenceMode::Raccd,
        w.build(),
        None,
        Some(&mut split_rec),
    );
    part1.run_until(k, Some(&mut split_rec));
    let snap = part1.snapshot();
    let part2 = Driver::restore(cfg, CoherenceMode::Raccd, w.build(), &snap).expect("restore");
    let split_out = part2.finish(Some(&mut split_rec));

    assert_eq!(split_out.stats, ref_out.stats, "stats across split");
    assert_eq!(
        split_rec.events().len(),
        ref_rec.events().len(),
        "total telemetry events"
    );
    let count_by_kind = |rec: &Recorder| {
        let mut m = std::collections::BTreeMap::new();
        for ev in rec.events() {
            *m.entry(ev.kind()).or_insert(0u64) += 1;
        }
        m
    };
    assert_eq!(
        count_by_kind(&split_rec),
        count_by_kind(&ref_rec),
        "per-kind telemetry event counts"
    );
}

#[test]
fn restore_rejects_mismatched_shape() {
    let benches = all_benchmarks(Scale::Test);
    let w = &benches[0];
    let mut d = Driver::new(cfg(), CoherenceMode::Raccd, w.build(), None, None);
    d.run_until(1_000, None);
    let snap = d.snapshot();
    // Wrong mode.
    assert!(Driver::restore(cfg(), CoherenceMode::FullCoh, w.build(), &snap).is_err());
    // Wrong machine configuration.
    let other = cfg().with_dir_ratio(8);
    assert!(Driver::restore(other, CoherenceMode::Raccd, w.build(), &snap).is_err());
    // Corrupted bytes fail the section CRC.
    let mut bytes = snap.to_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    assert!(Snapshot::from_bytes(&bytes).is_err());
}
