//! Property: snapshot → restore → snapshot is byte-identical.
//!
//! Every section of the archive is produced by some component's
//! `Snap::save`; re-snapshotting a restored driver re-runs every
//! component's `save` on the state its `load` produced. Byte equality of
//! the two archives therefore proves `save ∘ load = id` for *every*
//! component simultaneously, over states actually reachable by real runs
//! — a `Snap` impl that drops, reorders or renormalises a field fails
//! here for whatever (seed, pause cycle) reaches it first.

use proptest::prelude::*;
use raccd_check::{GraphParams, RandomGraph};
use raccd_core::{CoherenceMode, Driver};
use raccd_sim::{FaultPlan, MachineConfig, SchedKind};

fn roundtrip(seed: u64, k: u64, plan: Option<FaultPlan>) -> (Vec<u8>, Vec<u8>) {
    let make = || RandomGraph::new(GraphParams::small(seed)).build();
    let cfg = MachineConfig::scaled().with_shadow_check(true);
    let mut d = Driver::new(cfg, CoherenceMode::Raccd, make(), plan, None);
    d.run_until(k, None);
    let s1 = d.snapshot();
    let d2 = Driver::restore(cfg, CoherenceMode::Raccd, make(), &s1).expect("restore");
    let s2 = d2.snapshot();
    (s1.to_bytes(), s2.to_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn snapshot_restore_snapshot_is_byte_identical(seed in 1u64..64, k in 1u64..40_000) {
        let (a, b) = roundtrip(seed, k, None);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn snapshot_idempotence_holds_under_fault_injection(seed in 1u64..32, k in 1u64..40_000) {
        let plan = FaultPlan {
            seed,
            drop: 1e-3,
            delay: 1e-3,
            dir_loss: 1e-3,
            task_fail: 1e-3,
            straggle: 1e-2,
            straggle_cycles: 500,
            ..FaultPlan::default()
        };
        let (a, b) = roundtrip(seed, k, Some(plan));
        prop_assert_eq!(a, b);
    }
}

/// Tiny quantum so the quantum policy actually parks tasks mid-run: the
/// `driver/sched`, `driver/parked` and `driver/quantum_start` sections all
/// carry live (non-default) state at the pause point.
fn sched_cfg(sched: SchedKind) -> MachineConfig {
    let mut cfg = MachineConfig::scaled()
        .with_shadow_check(true)
        .with_sched(sched);
    cfg.sched_quantum = 300;
    cfg
}

/// Per-policy variant of the byte-identity property: every scheduler's
/// snapshot body — including mid-preemption states with parked tasks and a
/// non-empty audit log — must survive `save ∘ load` unchanged.
#[test]
fn snapshot_idempotence_holds_for_every_scheduler_policy() {
    for sched in SchedKind::ALL {
        for (seed, k) in [(3u64, 2_000u64), (11, 9_000), (23, 25_000)] {
            let make = || RandomGraph::new(GraphParams::small(seed)).build();
            let cfg = sched_cfg(sched);
            let mut d = Driver::new(cfg, CoherenceMode::Raccd, make(), None, None);
            d.run_until(k, None);
            let s1 = d.snapshot();
            let d2 = Driver::restore(cfg, CoherenceMode::Raccd, make(), &s1).expect("restore");
            let s2 = d2.snapshot();
            assert_eq!(
                s1.to_bytes(),
                s2.to_bytes(),
                "{sched} at (seed {seed}, k {k})"
            );
        }
    }
}

/// Resume equivalence per policy: pausing mid-run, round-tripping the
/// archive through bytes and finishing must match the uninterrupted run —
/// same shadow state key, same `Stats` (including the scheduler counters
/// and preemption totals) — for every policy.
#[test]
fn restore_and_finish_matches_uninterrupted_for_every_scheduler_policy() {
    let seed = 7u64;
    let make = || RandomGraph::new(GraphParams::small(seed)).build();
    for sched in SchedKind::ALL {
        let cfg = sched_cfg(sched);
        let mut reference = Driver::new(cfg, CoherenceMode::Raccd, make(), None, None);
        while reference.step(None) {}
        let ref_key = reference
            .shadow_state_key()
            .expect("shadow checker attached");
        let ref_out = reference.finish(None);

        let k = ref_out.stats.cycles / 2;
        let mut part1 = Driver::new(cfg, CoherenceMode::Raccd, make(), None, None);
        part1.run_until(k, None);
        let bytes = part1.snapshot().to_bytes();
        let snap = raccd_snap::Snapshot::from_bytes(&bytes).expect("archive decodes");
        let mut part2 = Driver::restore(cfg, CoherenceMode::Raccd, make(), &snap).expect("restore");
        while part2.step(None) {}
        let split_key = part2.shadow_state_key().expect("shadow checker attached");
        let split_out = part2.finish(None);

        assert_eq!(split_key, ref_key, "{sched} split at {k}: shadow state key");
        assert_eq!(
            split_out.stats, ref_out.stats,
            "{sched} split at {k}: stats"
        );
        assert_eq!(
            split_out.audit, ref_out.audit,
            "{sched} split at {k}: audit log"
        );
    }
}
