//! One sparse, inclusive directory bank.
//!
//! The directory is banked per tile (Table I: 32768 entries/core in the
//! paper's 1:1 configuration; our scaled default is 2048/core — see
//! `raccd-sim::config`). Each bank is an 8-way set-associative array of
//! [`DirEntry`]s keyed by physical block number.
//!
//! Accounting kept here feeds three figures:
//! * **accesses** — Figure 7a;
//! * **time-integrated occupancy** — Figure 8 ("average occupancy of the
//!   directory during the execution");
//! * **per-size access histogram + powered-capacity integral** — Figures
//!   7d/10 via `raccd-energy` (dynamic energy depends on the *current*
//!   directory size under ADR).

use crate::error::ProtocolError;
use crate::mesi::EntryState;
use raccd_cache::SetAssoc;
use raccd_mem::BlockAddr;

/// A directory entry (alias of the MESI tracking state).
pub type DirEntry = EntryState;

/// A victim evicted from the directory to make room for a new entry.
/// Inclusivity demands the corresponding LLC line (and any private copies)
/// be invalidated by the caller.
#[derive(Clone, Copy, Debug)]
pub struct DirEviction {
    /// The block whose entry was evicted.
    pub block: BlockAddr,
    /// Its tracking state at eviction (holders must be invalidated).
    pub entry: DirEntry,
}

/// One directory bank with statistics.
#[derive(Clone, Debug)]
pub struct DirectoryBank {
    arr: SetAssoc<DirEntry>,
    ways: usize,
    bank_bits: u32,
    // --- statistics ---
    accesses: u64,
    allocations: u64,
    evictions: u64,
    /// (entries_capacity, accesses) histogram for size-dependent energy.
    access_hist: Vec<(u64, u64)>,
    /// ∫ occupancy dt and ∫ capacity dt for Figure 8 / leakage.
    occ_integral: u128,
    cap_integral: u128,
    last_event: u64,
}

impl DirectoryBank {
    /// Create a bank with `entries` capacity, `ways` associativity and
    /// `bank_bits` low block bits skipped for set indexing.
    ///
    /// Panics on an impossible geometry; [`DirectoryBank::try_new`] is
    /// the fallible variant.
    pub fn new(entries: usize, ways: usize, bank_bits: u32) -> Self {
        Self::try_new(entries, ways, bank_bits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`DirectoryBank::new`]: rejects a geometry whose entry
    /// count is not a positive multiple of the associativity.
    pub fn try_new(entries: usize, ways: usize, bank_bits: u32) -> Result<Self, ProtocolError> {
        if ways == 0 || entries < ways || !entries.is_multiple_of(ways) {
            return Err(ProtocolError::BadGeometry { entries, ways });
        }
        Ok(DirectoryBank {
            arr: SetAssoc::new(entries / ways, ways, bank_bits),
            ways,
            bank_bits,
            accesses: 0,
            allocations: 0,
            evictions: 0,
            access_hist: Vec::new(),
            occ_integral: 0,
            cap_integral: 0,
            last_event: 0,
        })
    }

    /// Current entry capacity (changes under ADR).
    pub fn capacity(&self) -> usize {
        self.arr.capacity()
    }

    /// Resident entries.
    pub fn occupancy(&self) -> usize {
        self.arr.occupancy()
    }

    /// Advance the occupancy/capacity integrals to `now`.
    pub fn tick(&mut self, now: u64) {
        if now > self.last_event {
            let dt = (now - self.last_event) as u128;
            self.occ_integral += dt * self.arr.occupancy() as u128;
            self.cap_integral += dt * self.arr.capacity() as u128;
            self.last_event = now;
        }
    }

    /// Record one directory access (lookup or update) at time `now`.
    pub fn record_access(&mut self, now: u64) {
        self.tick(now);
        self.accesses += 1;
        let cap = self.arr.capacity() as u64;
        match self.access_hist.last_mut() {
            Some((c, n)) if *c == cap => *n += 1,
            _ => self.access_hist.push((cap, 1)),
        }
    }

    /// Look up an entry, updating replacement state (does not count an
    /// access — callers decide what constitutes a protocol access).
    pub fn lookup(&mut self, block: BlockAddr) -> Option<&mut DirEntry> {
        self.arr.get_mut(block.0)
    }

    /// Probe without side effects.
    pub fn probe(&self, block: BlockAddr) -> Option<&DirEntry> {
        self.arr.probe(block.0)
    }

    /// Allocate an entry for `block` (installing a coherent line in the
    /// LLC). If the set is full the PLRU victim is evicted and returned;
    /// the caller must invalidate the victim's LLC line and private copies.
    pub fn allocate(&mut self, block: BlockAddr, now: u64, entry: DirEntry) -> Option<DirEviction> {
        self.tick(now);
        self.allocations += 1;

        self.arr.insert(block.0, entry).map(|(k, e)| {
            self.evictions += 1;
            DirEviction {
                block: BlockAddr(k),
                entry: e,
            }
        })
    }

    /// Remove the entry for `block` (LLC eviction of a coherent line, or a
    /// coherent→non-coherent transition, §III-E).
    pub fn deallocate(&mut self, block: BlockAddr, now: u64) -> Option<DirEntry> {
        self.tick(now);
        self.arr.remove(block.0)
    }

    /// Resize to `new_entries` (ADR). Entries that no longer fit are
    /// returned; the caller must treat them as inclusion victims.
    ///
    /// Panics on an impossible geometry; [`DirectoryBank::try_resize`] is
    /// the fallible variant.
    pub fn resize(&mut self, new_entries: usize, now: u64) -> Vec<DirEviction> {
        self.try_resize(new_entries, now)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`DirectoryBank::resize`]: rejects a geometry whose entry
    /// count is not a positive multiple of the associativity.
    pub fn try_resize(
        &mut self,
        new_entries: usize,
        now: u64,
    ) -> Result<Vec<DirEviction>, ProtocolError> {
        if new_entries < self.ways || !new_entries.is_multiple_of(self.ways) {
            return Err(ProtocolError::BadGeometry {
                entries: new_entries,
                ways: self.ways,
            });
        }
        self.tick(now);
        let evicted = self.arr.resize_sets(new_entries / self.ways);
        self.evictions += evicted.len() as u64;
        Ok(evicted
            .into_iter()
            .map(|(k, e)| DirEviction {
                block: BlockAddr(k),
                entry: e,
            })
            .collect())
    }

    /// Total accesses recorded (Figure 7a).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total entry allocations.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total inclusion evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Per-capacity access histogram `(entries, accesses)` for energy.
    pub fn access_histogram(&self) -> &[(u64, u64)] {
        &self.access_hist
    }

    /// Average occupancy fraction over `[0, now]`, after a final `tick`.
    pub fn avg_occupancy(&mut self, now: u64) -> f64 {
        self.tick(now);
        if self.cap_integral == 0 {
            return 0.0;
        }
        self.occ_integral as f64 / self.cap_integral as f64
    }

    /// ∫ powered-capacity dt in entry·cycles (leakage under Gated-Vdd).
    pub fn capacity_integral(&mut self, now: u64) -> u128 {
        self.tick(now);
        self.cap_integral
    }

    /// Iterate resident entries (diagnostics/tests).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &DirEntry)> {
        self.arr.iter().map(|(k, e)| (BlockAddr(k), e))
    }

    /// Bank-bit count used for indexing (needed when ADR rebuilds banks).
    pub fn bank_bits(&self) -> u32 {
        self.bank_bits
    }
}

impl raccd_snap::Snap for DirectoryBank {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        self.arr.save(w);
        self.ways.save(w);
        w.u32(self.bank_bits);
        w.u64(self.accesses);
        w.u64(self.allocations);
        w.u64(self.evictions);
        self.access_hist.save(w);
        self.occ_integral.save(w);
        self.cap_integral.save(w);
        w.u64(self.last_event);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        Ok(DirectoryBank {
            arr: Snap::load(r)?,
            ways: Snap::load(r)?,
            bank_bits: r.u32()?,
            accesses: r.u64()?,
            allocations: r.u64()?,
            evictions: r.u64()?,
            access_hist: Snap::load(r)?,
            occ_integral: Snap::load(r)?,
            cap_integral: Snap::load(r)?,
            last_event: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> DirectoryBank {
        DirectoryBank::new(16, 8, 0)
    }

    #[test]
    fn allocate_until_eviction() {
        let mut d = bank();
        // 2 sets × 8 ways; blocks 0,2,4,... land in set 0.
        for i in 0..8u64 {
            assert!(d
                .allocate(BlockAddr(i * 2), 0, DirEntry::uncached())
                .is_none());
        }
        let ev = d.allocate(BlockAddr(16 * 2), 0, DirEntry::uncached());
        assert!(ev.is_some());
        assert_eq!(d.evictions(), 1);
        assert_eq!(d.allocations(), 9);
    }

    #[test]
    fn occupancy_integral_tracks_time() {
        let mut d = bank();
        d.allocate(BlockAddr(1), 0, DirEntry::uncached());
        // 1 entry of 16 capacity for 100 cycles → 1/16 average.
        let avg = d.avg_occupancy(100);
        assert!((avg - 1.0 / 16.0).abs() < 1e-12, "avg = {avg}");
    }

    #[test]
    fn occupancy_integral_piecewise() {
        let mut d = bank();
        d.allocate(BlockAddr(1), 0, DirEntry::uncached());
        d.allocate(BlockAddr(2), 50, DirEntry::uncached());
        // [0,50): 1 entry; [50,100): 2 entries → avg = (50+100)/(100·16)
        let avg = d.avg_occupancy(100);
        assert!((avg - 150.0 / 1600.0).abs() < 1e-12, "avg = {avg}");
    }

    #[test]
    fn access_histogram_splits_on_resize() {
        let mut d = bank();
        d.record_access(0);
        d.record_access(1);
        let _ = d.resize(8, 10);
        d.record_access(11);
        assert_eq!(d.access_histogram(), &[(16, 2), (8, 1)]);
        assert_eq!(d.accesses(), 3);
    }

    #[test]
    fn resize_down_evicts_overflow() {
        let mut d = bank();
        for i in 0..16u64 {
            d.allocate(BlockAddr(i), 0, DirEntry::uncached());
        }
        let evicted = d.resize(8, 10);
        assert_eq!(evicted.len(), 8);
        assert_eq!(d.occupancy(), 8);
        assert_eq!(d.capacity(), 8);
    }

    #[test]
    fn deallocate_removes_entry() {
        let mut d = bank();
        d.allocate(BlockAddr(3), 0, DirEntry::uncached());
        assert!(d.deallocate(BlockAddr(3), 5).is_some());
        assert!(d.probe(BlockAddr(3)).is_none());
        assert_eq!(d.occupancy(), 0);
    }

    #[test]
    fn bad_geometry_is_a_typed_error_not_a_panic() {
        use crate::error::ProtocolError;
        assert_eq!(
            DirectoryBank::try_new(10, 8, 0).unwrap_err(),
            ProtocolError::BadGeometry {
                entries: 10,
                ways: 8
            }
        );
        assert!(DirectoryBank::try_new(0, 0, 0).is_err());
        let mut d = bank();
        assert_eq!(
            d.try_resize(12, 0).unwrap_err(),
            ProtocolError::BadGeometry {
                entries: 12,
                ways: 8
            }
        );
        // The bank is untouched after a rejected resize.
        assert_eq!(d.capacity(), 16);
        assert!(d.try_resize(8, 0).is_ok());
    }

    #[test]
    fn capacity_integral_reflects_resize() {
        let mut d = bank();
        d.tick(0);
        let _ = d.resize(8, 100);
        let integral = d.capacity_integral(200);
        assert_eq!(integral, 16 * 100 + 8 * 100);
    }
}
