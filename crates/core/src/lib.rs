#![warn(missing_docs)]

//! RaCCD — Runtime-assisted Cache Coherence Deactivation (§III).
//!
//! This crate is the paper's primary contribution, tying the task runtime
//! (`raccd-runtime`) to the simulated machine (`raccd-sim`):
//!
//! * [`ncrt`] — the Non-Coherent Region Table (Figure 4) and the
//!   `raccd_register` iterative virtual→physical translation with region
//!   collapsing (Figure 5).
//! * [`pt`] — the Page-Table baseline classifier of Cuesta et al.\[ISCA'11\]: a
//!   private/shared bit per page, first-touch private, irreversible
//!   private→shared transitions with cache+TLB flushes (§II-B).
//! * [`mode`] — the three evaluated systems: FullCoh, PT, RaCCD (§V-A).
//! * [`census`] — the non-coherent block census behind Figure 2.
//! * [`driver`] — the simulation loop: scheduling, `raccd_register`, task
//!   execution (functional-at-dispatch, timed replay under interleaving),
//!   `raccd_invalidate`, wake-up (Figure 3).
//! * [`engine`] — the selectable simulation loop: the serial oracle and
//!   the epoch-parallel engine (speculative hit prefixes committed in heap
//!   order, bit-identical to serial for any thread count; DESIGN.md §12).
//! * [`experiment`] — the top-level [`Experiment`] API and [`RunResult`].

pub mod census;
pub mod driver;
pub mod engine;
pub mod experiment;
pub mod mode;
pub mod ncrt;
pub mod pt;
pub mod resilience;
pub mod tlbclass;

pub use census::{Census, CensusSummary};
pub use driver::{Driver, DriverOutput, RollbackPolicy};
pub use engine::{
    plan_epoch, run_program_engine, run_program_engine_profiled, Engine, PlanTurn, SupervisedEnd,
    WorkerPool,
};
pub use experiment::{Experiment, RunResult};
pub use mode::CoherenceMode;
pub use ncrt::Ncrt;
pub use pt::{PageClassifier, PtDecision};
pub use raccd_obs::Recorder;
pub use resilience::{DegradeController, DetectReason, FaultReport};
pub use tlbclass::TlbClassifier;
