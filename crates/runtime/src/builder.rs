//! The façade workloads use to assemble a task-parallel program.
//!
//! A [`ProgramBuilder`] owns the simulated memory and the growing task
//! graph; workloads allocate arrays, initialise them, and add annotated
//! tasks — the Rust equivalent of the `#pragma omp task depend(...)`
//! annotations in the paper's Figure 1.

use crate::graph::{TaskGraph, TaskId};
use crate::region::Dep;
use crate::task::TaskCtx;
use raccd_mem::{addr::VRange, SimMemory};

/// A fully built task-parallel program: memory image plus TDG.
pub struct Program {
    /// The simulated address space with initialised input data.
    pub mem: SimMemory,
    /// The task dependence graph.
    pub graph: TaskGraph,
}

/// Builder for [`Program`]s.
#[derive(Default)]
pub struct ProgramBuilder {
    mem: SimMemory,
    graph: TaskGraph,
}

impl ProgramBuilder {
    /// Start an empty program.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Allocate a named, zeroed, page-aligned array.
    pub fn alloc(&mut self, name: &str, bytes: u64) -> VRange {
        self.mem.alloc(name, bytes)
    }

    /// Direct access to memory for input initialisation (host-speed, not
    /// traced — the paper's benchmarks likewise initialise inputs outside
    /// the measured task region).
    pub fn mem(&mut self) -> &mut SimMemory {
        &mut self.mem
    }

    /// Add an annotated task. `deps` mirrors `depend(in/out/inout: …)`.
    pub fn task(
        &mut self,
        name: &str,
        deps: Vec<Dep>,
        body: impl FnOnce(&mut TaskCtx<'_>) + 'static,
    ) -> TaskId {
        self.graph.add_task(name, deps, Box::new(body))
    }

    /// Insert a barrier (OpenMP `taskwait`): ready only after all
    /// previously created tasks finish.
    pub fn barrier(&mut self, name: &str) -> TaskId {
        self.graph.add_barrier(name, Box::new(|_| {}))
    }

    /// Finish building.
    pub fn finish(self) -> Program {
        Program {
            mem: self.mem,
            graph: self.graph,
        }
    }
}

impl Program {
    /// Run every task sequentially in a valid topological order, without
    /// any timing model — useful for functional testing of workloads and
    /// as the reference executor.
    pub fn run_functional(&mut self) {
        let mut ready: std::collections::VecDeque<TaskId> = self.graph.initially_ready().into();
        let mut done = 0usize;
        let mut trace = Vec::new();
        while let Some(t) = ready.pop_front() {
            let body = self.graph.take_body(t);
            trace.clear();
            let mut ctx = TaskCtx::new(&mut self.mem, &mut trace);
            body(&mut ctx);
            ready.extend(self.graph.complete(t));
            done += 1;
        }
        assert_eq!(
            done,
            self.graph.len(),
            "TDG has a cycle or an unreachable task"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Dep;

    #[test]
    fn build_and_run_functional_pipeline() {
        let mut b = ProgramBuilder::new();
        let buf = b.alloc("v", 8);
        let addr = buf.start;
        b.task("init", vec![Dep::output(buf)], move |ctx| {
            ctx.write_u64(addr, 5);
        });
        b.task("double", vec![Dep::inout(buf)], move |ctx| {
            let v = ctx.read_u64(addr);
            ctx.write_u64(addr, v * 2);
        });
        b.task("incr", vec![Dep::inout(buf)], move |ctx| {
            let v = ctx.read_u64(addr);
            ctx.write_u64(addr, v + 1);
        });
        let mut p = b.finish();
        assert_eq!(p.graph.len(), 3);
        assert_eq!(p.graph.edges(), 2);
        p.run_functional();
        assert_eq!(p.mem.read_u64(addr), 11, "(5 * 2) + 1 in program order");
    }

    #[test]
    fn barrier_orders_phases() {
        let mut b = ProgramBuilder::new();
        let buf = b.alloc("v", 8);
        let addr = buf.start;
        b.task("w", vec![Dep::output(buf)], move |ctx| {
            ctx.write_u64(addr, 1)
        });
        b.barrier("sync");
        let mut p = b.finish();
        assert_eq!(p.graph.len(), 2);
        p.run_functional();
        assert_eq!(p.mem.read_u64(addr), 1);
    }

    #[test]
    fn parallel_tasks_all_execute() {
        let mut b = ProgramBuilder::new();
        let buf = b.alloc("v", 4096);
        for i in 0..8u64 {
            let a = buf.start.offset(i * 8);
            b.task("w", vec![Dep::output(VRange::new(a, 8))], move |ctx| {
                ctx.write_u64(a, i + 1)
            });
        }
        let mut p = b.finish();
        p.run_functional();
        for i in 0..8u64 {
            assert_eq!(p.mem.read_u64(buf.start.offset(i * 8)), i + 1);
        }
    }
}
