//! The profiler's cardinal rule, checked by the oracle: attaching the
//! self-profiler must not perturb the simulation in any observable way.
//!
//! Every pair below runs the same program twice — profiler detached vs
//! attached — with the shadow checker on both, and demands bit-identical
//! `Stats` plus an identical shadow `state_key` (the full architectural
//! fingerprint: caches, directory, NCRT, memory image). The pairs cover
//! random dependence graphs under both systems, real workloads through
//! the `Experiment` API, and runs with an armed fault plane (where any
//! extra entropy draw would cascade into different fault schedules).

use raccd_check::taskgen::{GraphParams, RandomGraph};
use raccd_core::{CoherenceMode, Driver, Experiment};
use raccd_fault::FaultPlan;
use raccd_prof::Site;
use raccd_sim::{MachineConfig, Stats};
use raccd_workloads::{all_benchmarks, Scale};

fn cfg() -> MachineConfig {
    let mut cfg = MachineConfig::scaled().with_shadow_check(true);
    cfg.ncores = 4;
    cfg.mesh_k = 2;
    cfg
}

/// Run a random graph to completion, returning the shadow state key and
/// final stats; `profiled` decides whether the profiler rides along.
fn run_keyed(
    mode: CoherenceMode,
    seed: u64,
    plan: Option<FaultPlan>,
    profiled: bool,
) -> (String, Stats, Option<raccd_prof::ProfReport>) {
    let program = RandomGraph::new(GraphParams::small(seed)).build();
    let mut driver = Driver::new(cfg(), mode, program, plan, None);
    if profiled {
        driver.attach_prof();
    }
    while driver.step(None) {}
    let key = driver.shadow_state_key().expect("shadow checker attached");
    let out = driver.finish(None);
    assert!(
        out.check.as_ref().is_some_and(|c| c.clean()),
        "{mode} seed {seed}: checker unclean"
    );
    (key, out.stats, out.prof)
}

#[test]
fn profiler_is_invisible_on_random_graphs() {
    for mode in [CoherenceMode::Raccd, CoherenceMode::FullCoh] {
        for seed in [7, 42] {
            let (key_off, stats_off, prof_off) = run_keyed(mode, seed, None, false);
            let (key_on, stats_on, prof_on) = run_keyed(mode, seed, None, true);
            assert!(prof_off.is_none());
            let report = prof_on.expect("profiled run returns a span table");
            assert!(!report.is_empty(), "profiled run recorded spans");
            assert_eq!(stats_off, stats_on, "{mode} seed {seed}: Stats diverged");
            assert_eq!(key_off, key_on, "{mode} seed {seed}: state key diverged");
        }
    }
}

#[test]
fn profiler_is_invisible_under_fault_injection() {
    // A fault plane draws from a seeded RNG as messages flow; if the
    // profiler perturbed any draw, the injected-fault schedule (and with
    // it the whole run) would diverge.
    let plan = || {
        Some(FaultPlan {
            seed: 1234,
            drop: 2e-4,
            dup: 1e-4,
            delay: 5e-4,
            ..FaultPlan::default()
        })
    };
    let (key_off, stats_off, _) = run_keyed(CoherenceMode::Raccd, 11, plan(), false);
    let (key_on, stats_on, prof) = run_keyed(CoherenceMode::Raccd, 11, plan(), true);
    assert_eq!(stats_off, stats_on, "Stats diverged under fault injection");
    assert_eq!(key_off, key_on, "state key diverged under fault injection");
    assert!(stats_on.msg_retries > 0 || stats_on.noc_traffic > 0);
    assert!(prof.is_some_and(|p| p.get(Site::NocXmit).count > 0));
}

#[test]
fn profiler_is_invisible_on_real_workloads() {
    // The Experiment-level wrappers on Table II workloads: `run_profiled`
    // must verify and produce the exact counters of a plain `run`.
    let workloads = all_benchmarks(Scale::Test);
    for &idx in &[3usize, 7] {
        // Jacobi, MD5
        let w = workloads[idx].as_ref();
        for mode in [CoherenceMode::Raccd, CoherenceMode::FullCoh] {
            let exp = Experiment::new(MachineConfig::scaled(), mode);
            let plain = exp.run(w);
            let profiled = exp.run_profiled(w);
            assert!(plain.verified && profiled.verified);
            assert_eq!(
                plain.stats,
                profiled.stats,
                "{} under {mode}: profiled Stats diverged",
                w.name()
            );
            let report = profiled.prof.expect("span table present");
            assert_eq!(
                report.get(Site::MemRef).count,
                profiled.stats.refs_processed
            );
        }
    }
}
