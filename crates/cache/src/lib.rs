#![warn(missing_docs)]

//! Set-associative cache models for the RaCCD reproduction.
//!
//! Table I of the paper specifies 32 KiB 2-way L1 data caches and a shared
//! LLC banked at 2 MiB per core, 8-way, both with pseudo-LRU replacement,
//! 64-byte lines. RaCCD (§III-C1) adds a **Non-Coherent (NC) bit** to every
//! block in the private data caches, and the LLC carries the NC attribute in
//! its lines so blocks can live there untracked by the directory.
//!
//! * [`plru`] — tree pseudo-LRU replacement state.
//! * [`set_assoc`] — a generic set-associative array used by the L1, the
//!   LLC banks, and (in `raccd-protocol`) the sparse directory.
//! * [`l1`] — the private L1 data cache: MESI state + NC bit per line.
//! * [`llc`] — one bank of the shared last-level cache.

pub mod l1;
pub mod llc;
pub mod plru;
pub mod set_assoc;

pub use l1::{L1Cache, L1Line, L1State};
pub use llc::{LlcBank, LlcLine};
pub use plru::TreePlru;
pub use set_assoc::{Line, SetAssoc};
