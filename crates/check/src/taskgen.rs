//! Seeded random task-parallel programs for differential testing.
//!
//! [`RandomGraph`] generates a layered task graph with *honest* dependence
//! annotations: every address a task body touches is covered by one of its
//! declared `in`/`out`/`inout` regions, so the runtime's auto-derived
//! RAW/WAW/WAR edges make the program functionally deterministic under
//! **any** legal schedule. That is the property the differential harness
//! leans on: RaCCD and the fully-coherent baseline may schedule tasks in
//! different orders (their timing differs), yet final memory and every
//! per-task read value must be bit-identical.
//!
//! Each task checksums everything it reads and writes values derived from
//! that checksum into its output buffer, so a single stale read anywhere
//! cascades into the final memory image. The per-task read checksums are
//! additionally logged out-of-band for direct comparison.

use raccd_mem::addr::VRange;
use raccd_runtime::{Dep, Program, ProgramBuilder};
use std::cell::RefCell;
use std::rc::Rc;

/// Shape of a generated graph.
#[derive(Clone, Copy, Debug)]
pub struct GraphParams {
    /// RNG seed; same seed ⇒ same graph, buffers and bodies.
    pub seed: u64,
    /// Task layers (layer *k* reads layer *k−1* outputs).
    pub layers: usize,
    /// Tasks per layer.
    pub width: usize,
    /// Inputs each task draws from the previous layer (clamped to width).
    pub fan_in: usize,
    /// 8-byte words per task output buffer.
    pub words: u64,
}

impl GraphParams {
    /// A small graph: 3 layers × 4 tasks, fan-in 2, 32 words per buffer.
    pub fn small(seed: u64) -> Self {
        GraphParams {
            seed,
            layers: 3,
            width: 4,
            fan_in: 2,
            words: 32,
        }
    }
}

/// Per-task observation log: `(task name, checksum of all values read)`.
pub type ReadLog = Rc<RefCell<Vec<(String, u64)>>>;

/// A generated program (rebuildable: regenerate with the same params for
/// each coherence mode under test).
pub struct RandomGraph {
    params: GraphParams,
}

/// SplitMix64: tiny, deterministic, good enough for structure generation.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The value-mixing function task bodies apply to everything they read.
fn mix(v: u64) -> u64 {
    let mut z = v ^ 0xD6E8_FEB8_6659_FD93;
    z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z ^ (z >> 32)
}

impl RandomGraph {
    /// Describe a graph.
    pub fn new(params: GraphParams) -> Self {
        RandomGraph { params }
    }

    /// Build the program, logging each task's read checksum into `log`.
    pub fn build_logged(&self, log: ReadLog) -> Program {
        let p = self.params;
        let words = p.words.max(1);
        let fan_in = p.fan_in.clamp(1, p.width.max(1));
        let mut rng = p.seed ^ 0xA076_1D64_78BD_642F;
        let mut b = ProgramBuilder::new();

        // Seed input buffer, initialised with derived-but-nonzero data.
        let input = b.alloc("input", words * 8);
        for w in 0..words {
            b.mem()
                .write_u64(input.start.offset(w * 8), mix(p.seed ^ w));
        }
        // A shared accumulator some tasks `inout`, forcing serialising
        // RAW/WAW chains across layers.
        let acc = b.alloc("acc", 8);

        let mut prev: Vec<VRange> = vec![input];
        for layer in 0..p.layers.max(1) {
            let mut outs = Vec::with_capacity(p.width);
            for t in 0..p.width.max(1) {
                let out = b.alloc(&format!("l{layer}t{t}"), words * 8);
                let mut inputs = Vec::with_capacity(fan_in);
                for _ in 0..fan_in {
                    inputs.push(prev[(splitmix(&mut rng) as usize) % prev.len()]);
                }
                let touches_acc = splitmix(&mut rng).is_multiple_of(4);
                let mut deps: Vec<Dep> = inputs.iter().map(|&r| Dep::input(r)).collect();
                deps.push(Dep::output(out));
                if touches_acc {
                    deps.push(Dep::inout(acc));
                }
                let name = format!("l{layer}t{t}");
                let tname = name.clone();
                let log = Rc::clone(&log);
                b.task(&tname, deps, move |ctx| {
                    let mut sum = 0u64;
                    for r in &inputs {
                        for w in 0..words {
                            sum = mix(sum ^ ctx.read_u64(r.start.offset(w * 8)));
                        }
                    }
                    if touches_acc {
                        let a = ctx.read_u64(acc.start);
                        sum = mix(sum ^ a);
                        ctx.write_u64(acc.start, sum);
                    }
                    log.borrow_mut().push((name, sum));
                    for w in 0..words {
                        ctx.write_u64(out.start.offset(w * 8), mix(sum ^ w));
                    }
                });
                outs.push(out);
            }
            prev = outs;
        }
        b.finish()
    }

    /// Build without caring about the read log.
    pub fn build(&self) -> Program {
        self.build_logged(Rc::new(RefCell::new(Vec::new())))
    }

    /// Tasks the generated graph contains.
    pub fn task_count(&self) -> usize {
        self.params.layers.max(1) * self.params.width.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_structure() {
        let a = RandomGraph::new(GraphParams::small(7)).build();
        let b = RandomGraph::new(GraphParams::small(7)).build();
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.mem.allocations().len(), b.mem.allocations().len());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let a = RandomGraph::new(GraphParams::small(1)).build();
        let b = RandomGraph::new(GraphParams::small(2)).build();
        // Same shape, but the input data must differ.
        let aw = a.mem.read_u64(a.mem.allocations()[0].1.start);
        let bw = b.mem.read_u64(b.mem.allocations()[0].1.start);
        assert_ne!(aw, bw);
    }

    #[test]
    fn graphs_have_cross_layer_edges() {
        let g = RandomGraph::new(GraphParams::small(3));
        let p = g.build();
        assert_eq!(p.graph.len(), g.task_count());
        // Every layer-1+ task depends on at least one producer.
        assert!(p.graph.edges() >= (g.task_count() - 4));
    }
}
