//! **Jacobi** — "solves the stationary heat diffusion problem using the
//! iterative Jacobi method with a 5-element stencil" (Table II: 2-D matrix
//! N² = 2359296, 10 iterations).
//!
//! Two grids alternate as source/destination. Each iteration is decomposed
//! into row-block tasks: `in` the source block plus one halo row on each
//! side, `out` the destination block. Consecutive iterations read blocks
//! produced by *different* cores under the dynamic scheduler — the
//! temporarily-private pattern that separates RaCCD from PT in Figure 2.

use crate::scale::Scale;
use crate::util::GridF32;
use raccd_mem::{SimMemory, SplitMix64};
use raccd_runtime::{Dep, Program, ProgramBuilder, Workload};

/// The Jacobi benchmark.
pub struct Jacobi {
    /// Grid is `n × n` f32.
    pub n: u64,
    /// Jacobi sweeps.
    pub iters: u64,
    /// Row-block tasks per sweep.
    pub blocks: u64,
    /// RNG seed for deterministic input data.
    pub seed: u64,
}

impl Jacobi {
    /// Configure for a scale (Paper: N² = 2359296 ⇒ n = 1536, 10 iters).
    pub fn new(scale: Scale) -> Self {
        Jacobi {
            n: scale.pick(48, 384, 1536),
            iters: scale.pick(2, 3, 10),
            blocks: scale.pick(8, 32, 48),
            seed: 0x01AC_B0B1,
        }
    }

    fn init_grid(&self) -> Vec<f32> {
        let mut rng = SplitMix64::new(self.seed);
        (0..self.n * self.n).map(|_| rng.next_f32()).collect()
    }

    /// Host reference: the same sweeps over plain vectors.
    fn reference(&self) -> Vec<f32> {
        let n = self.n as usize;
        let mut src = self.init_grid();
        let mut dst = src.clone();
        for _ in 0..self.iters {
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    dst[i * n + j] = 0.25
                        * (src[(i - 1) * n + j]
                            + src[(i + 1) * n + j]
                            + src[i * n + j - 1]
                            + src[i * n + j + 1]);
                }
            }
            std::mem::swap(&mut src, &mut dst);
        }
        src
    }
}

impl Workload for Jacobi {
    fn name(&self) -> &str {
        "Jacobi"
    }

    fn problem(&self) -> String {
        format!("2D Matrix N2 = {}, {} iters.", self.n * self.n, self.iters)
    }

    fn build(&self) -> Program {
        let n = self.n;
        let mut b = ProgramBuilder::new();
        let a_range = b.alloc("A", n * n * 4);
        let b_range = b.alloc("B", n * n * 4);
        let ga = GridF32::new(a_range, n);
        let gb = GridF32::new(b_range, n);

        // Initialise A (and mirror into B so untouched boundary rows match).
        let init = self.init_grid();
        for (i, &v) in init.iter().enumerate() {
            b.mem().write_f32(ga.at(i as u64 / n, i as u64 % n), v);
            b.mem().write_f32(gb.at(i as u64 / n, i as u64 % n), v);
        }

        for it in 0..self.iters {
            let (src, dst) = if it % 2 == 0 { (ga, gb) } else { (gb, ga) };
            for (r0, r1) in crate::util::chunk_ranges(n, self.blocks) {
                let halo_lo = r0.saturating_sub(1);
                let halo_hi = (r1 + 1).min(n);
                let deps = vec![
                    Dep::input(src.rows(halo_lo, halo_hi)),
                    Dep::output(dst.rows(r0, r1)),
                ];
                b.task("jacobi", deps, move |ctx| {
                    for i in r0..r1 {
                        if i == 0 || i == n - 1 {
                            // Boundary rows: carry values forward.
                            for j in 0..n {
                                let v = ctx.read_f32(src.at(i, j));
                                ctx.write_f32(dst.at(i, j), v);
                            }
                            continue;
                        }
                        // Boundary columns carry forward; interior stencil.
                        let v = ctx.read_f32(src.at(i, 0));
                        ctx.write_f32(dst.at(i, 0), v);
                        for j in 1..n - 1 {
                            let s = 0.25
                                * (ctx.read_f32(src.at(i - 1, j))
                                    + ctx.read_f32(src.at(i + 1, j))
                                    + ctx.read_f32(src.at(i, j - 1))
                                    + ctx.read_f32(src.at(i, j + 1)));
                            ctx.write_f32(dst.at(i, j), s);
                        }
                        let v = ctx.read_f32(src.at(i, n - 1));
                        ctx.write_f32(dst.at(i, n - 1), v);
                    }
                });
            }
        }
        b.finish()
    }

    fn verify(&self, mem: &SimMemory) -> Result<(), String> {
        let expect = self.reference();
        let n = self.n;
        // After `iters` sweeps the result lives in A if iters is even
        // (final swap semantics), else in B.
        let final_alloc = if self.iters.is_multiple_of(2) { 0 } else { 1 };
        let base = mem.allocations()[final_alloc].1.start;
        let grid = GridF32::new(raccd_mem::addr::VRange::new(base, n * n * 4), n);
        for i in 0..n {
            for j in 0..n {
                let got = mem.read_f32(grid.at(i, j));
                let want = expect[(i * n + j) as usize];
                if got != want {
                    return Err(format!("({i},{j}): got {got}, want {want}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_run_matches_reference_bitwise() {
        let w = Jacobi::new(Scale::Test);
        let mut p = w.build();
        p.run_functional();
        w.verify(&p.mem).expect("bitwise match");
    }

    #[test]
    fn task_count_is_blocks_times_iters() {
        let w = Jacobi::new(Scale::Test);
        let p = w.build();
        assert_eq!(p.graph.len() as u64, w.blocks * w.iters);
        assert!(p.graph.edges() > 0, "iterations must chain");
    }

    #[test]
    fn stencil_smooths_values() {
        // After enough sweeps, interior variance must shrink.
        let w = Jacobi {
            n: 32,
            iters: 6,
            blocks: 4,
            seed: 7,
        };
        let before = w.init_grid();
        let after = w.reference();
        let var = |v: &[f32]| {
            let n = w.n as usize;
            let inner: Vec<f32> = (1..n - 1)
                .flat_map(|i| (1..n - 1).map(move |j| v[i * n + j]))
                .collect();
            let mean = inner.iter().sum::<f32>() / inner.len() as f32;
            inner.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / inner.len() as f32
        };
        assert!(var(&after) < var(&before) * 0.5);
    }

    #[test]
    fn odd_iters_land_in_second_array() {
        let w = Jacobi {
            n: 16,
            iters: 1,
            blocks: 2,
            seed: 9,
        };
        let mut p = w.build();
        p.run_functional();
        w.verify(&p.mem).expect("odd-iteration placement");
    }
}
