//! `perf` — the simulator's own performance benchmark and trajectory gate.
//!
//! Runs a pinned matrix (3 workloads × {RaCCD, FullCoh} × {plain,
//! profiled, epoch-parallel ×4}, fixed machine config), takes the median
//! of `--reps` repetitions per job, and emits a versioned `BENCH_7.json`
//! trajectory point: throughput metrics (simulated cycles/sec, refs/sec,
//! protocol events/sec), the merged profiler span table, a snapshot-codec
//! microbench (encode/decode bytes/sec), the measured profiler overhead,
//! and a fig7-sweep engine-speedup pair (`fig7-sweep/serial` vs
//! `fig7-sweep/par4`, the whole figure-7 matrix advanced in-process under
//! each engine so the ratio isolates the engine itself from job-level
//! parallelism).
//!
//! Along the way the matrix double-checks two cardinal rules: every
//! profiled run must produce `Stats` bit-identical to its unprofiled twin
//! (the profiler reads only host clocks), and every epoch-parallel run —
//! matrix jobs and every fig7-sweep cell — must produce `Stats`
//! bit-identical to the serial oracle.
//!
//! ```text
//! perf [--scale test|bench|paper] [--reps N] [--out BENCH_7.json]
//!      [--compare [BASELINE]] [--candidate CAND]
//! ```
//!
//! `--compare` re-runs the matrix (or, with `--candidate`, reads a
//! previously emitted file) and gates it against the baseline document:
//! exit 0 clean, 1 when any job's median throughput dropped more than
//! 15 %, 2 on tool error (unreadable/malformed documents, determinism
//! violation). Regressions against a baseline recorded on a different
//! host fingerprint are downgraded to warnings — absolute throughput is
//! only comparable like-for-like. CI treats only exit 2 as hard failure
//! (soft perf gate).

use raccd_bench::perfjson::{
    compare, git_rev, host_fingerprint, BenchDoc, PerfJob, SCHEMA_VERSION,
};
use raccd_core::{CoherenceMode, Driver, Engine, Experiment, RunResult};
use raccd_obs::{render_metrics_table, RunMetrics};
use raccd_prof::ProfReport;
use raccd_sim::{MachineConfig, Stats, DIR_RATIOS};
use raccd_snap::Snapshot;
use raccd_workloads::{all_benchmarks, Scale};
use std::time::Instant;

/// Pinned workload subset: indices into [`all_benchmarks`] (Jacobi,
/// Histo, MD5 — a stencil, a scatter, and a streaming kernel).
const WORKLOADS: [usize; 3] = [3, 2, 7];

/// Pinned systems under test.
const MODES: [(CoherenceMode, &str); 2] = [
    (CoherenceMode::Raccd, "raccd"),
    (CoherenceMode::FullCoh, "fullcoh"),
];

/// Pinned epoch-parallel configuration for the `par4` jobs and the
/// fig7-sweep speedup pair. Four workers matches the fig7 sweep in CI.
const PAR4: Engine = Engine::EpochParallel { threads: 4 };

fn main() {
    std::process::exit(match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("perf: error: {e}");
            2
        }
    });
}

struct Args {
    scale: Scale,
    reps: usize,
    out: String,
    baseline: Option<String>,
    candidate: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut a = Args {
        scale: Scale::Test,
        reps: 3,
        out: "BENCH_7.json".to_string(),
        baseline: None,
        candidate: None,
    };
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or(format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                a.scale = match value(&argv, i, "--scale")?.as_str() {
                    "test" => Scale::Test,
                    "bench" => Scale::Bench,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale {other:?}")),
                };
                i += 2;
            }
            "--reps" => {
                a.reps = value(&argv, i, "--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if a.reps == 0 {
                    return Err("--reps must be >= 1".into());
                }
                i += 2;
            }
            "--out" => {
                a.out = value(&argv, i, "--out")?;
                i += 2;
            }
            "--compare" => {
                // Optional value: default to the committed trajectory file.
                match argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(p) => {
                        a.baseline = Some(p.clone());
                        i += 2;
                    }
                    None => {
                        a.baseline = Some("BENCH_7.json".to_string());
                        i += 1;
                    }
                }
            }
            "--candidate" => {
                a.candidate = Some(value(&argv, i, "--candidate")?);
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(a)
}

fn run() -> Result<i32, String> {
    let args = parse_args()?;

    // Pure file-vs-file mode: no simulation, deterministic (used by CI
    // after the artifact is generated, and by tests).
    if let (Some(base), Some(cand)) = (&args.baseline, &args.candidate) {
        let baseline = load_doc(base)?;
        let candidate = load_doc(cand)?;
        return Ok(report_compare(&baseline, &candidate));
    }

    let doc = run_matrix(args.scale, args.reps)?;
    let text = doc.render();
    std::fs::write(&args.out, &text).map_err(|e| format!("writing {}: {e}", args.out))?;
    eprintln!("perf: wrote {} ({} jobs)", args.out, doc.jobs.len());

    println!("{}", render_metrics_table(&metric_rows(&doc)));
    println!(
        "profiler overhead: {:+.2}% (profiled vs plain median wall)",
        doc.prof_overhead_pct
    );
    println!("\nmerged span table:\n{}", doc.spans.render_table());

    if let Some(base) = &args.baseline {
        let baseline = load_doc(base)?;
        return Ok(report_compare(&baseline, &doc));
    }
    Ok(0)
}

fn load_doc(path: &str) -> Result<BenchDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    BenchDoc::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn metric_rows(doc: &BenchDoc) -> Vec<RunMetrics> {
    doc.jobs.iter().map(|j| j.metrics.clone()).collect()
}

fn report_compare(baseline: &BenchDoc, candidate: &BenchDoc) -> i32 {
    let out = compare(baseline, candidate);
    println!(
        "perf compare: candidate {} vs baseline {} ({} jobs compared)",
        candidate.git_rev, baseline.git_rev, out.compared
    );
    for line in &out.lines {
        println!("{line}");
    }
    if out.clean() {
        println!("perf compare: clean (tolerance 15% on median cycles/sec)");
        0
    } else {
        println!(
            "perf compare: {} job(s) regressed beyond 15%",
            out.regressions
        );
        1
    }
}

/// One rep of one job; `profiled` also returns the span report.
fn run_once(
    scale: Scale,
    cfg: MachineConfig,
    bench_idx: usize,
    mode: CoherenceMode,
    profiled: bool,
    engine: Engine,
) -> (f64, RunResult) {
    let workloads = all_benchmarks(scale);
    let w = workloads[bench_idx].as_ref();
    let exp = Experiment::new(cfg, mode).with_engine(engine);
    let t0 = Instant::now();
    let result = if profiled {
        exp.run_profiled(w)
    } else {
        exp.run(w)
    };
    (t0.elapsed().as_secs_f64(), result)
}

fn run_matrix(scale: Scale, reps: usize) -> Result<BenchDoc, String> {
    let cfg = MachineConfig::scaled();
    let scale_name = format!("{scale}");
    let names: Vec<String> = {
        let ws = all_benchmarks(scale);
        WORKLOADS
            .iter()
            .map(|&i| ws[i].name().to_string())
            .collect()
    };
    eprintln!(
        "perf: matrix {} workloads x {} modes x {{plain, prof, par4}}, {} rep(s), scale {scale_name}",
        WORKLOADS.len(),
        MODES.len(),
        reps
    );

    let mut jobs = Vec::new();
    let mut spans = ProfReport::empty();
    let mut overhead_pcts = Vec::new();

    for (wi, &bench_idx) in WORKLOADS.iter().enumerate() {
        for (mode, mode_name) in MODES {
            let mut plain: Vec<(f64, RunResult)> = Vec::new();
            let mut prof: Vec<(f64, RunResult)> = Vec::new();
            let mut par: Vec<(f64, RunResult)> = Vec::new();
            for _ in 0..reps {
                plain.push(run_once(scale, cfg, bench_idx, mode, false, Engine::Serial));
            }
            for _ in 0..reps {
                prof.push(run_once(scale, cfg, bench_idx, mode, true, Engine::Serial));
            }
            for _ in 0..reps {
                par.push(run_once(scale, cfg, bench_idx, mode, false, PAR4));
            }

            // Determinism gate: every rep — profiled, epoch-parallel or
            // not — must agree on the simulated outcome bit for bit.
            let reference = &plain[0].1;
            if !reference.verified {
                return Err(format!(
                    "{}/{mode_name}: verification failed: {:?}",
                    names[wi], reference.verify_error
                ));
            }
            for (_, r) in plain.iter().chain(prof.iter()) {
                if r.stats != reference.stats {
                    return Err(format!(
                        "{}/{mode_name}: non-deterministic Stats across reps \
                         (profiler must not perturb simulation)",
                        names[wi]
                    ));
                }
            }
            for (_, r) in &par {
                if r.stats != reference.stats {
                    return Err(format!(
                        "{}/{mode_name}: epoch-parallel Stats diverged from the \
                         serial oracle (engine must be bit-identical)",
                        names[wi]
                    ));
                }
            }

            let plain_med = median_rep(&plain);
            let prof_med = median_rep(&prof);
            let par_med = median_rep(&par);
            overhead_pcts.push((prof_med.0 - plain_med.0) / plain_med.0 * 100.0);

            let base_name = format!("{}/{mode_name}", names[wi]);
            jobs.push(make_job(
                &base_name, &names[wi], mode_name, false, reps, plain_med,
            ));
            jobs.push(make_job(
                &format!("{base_name}/prof"),
                &names[wi],
                mode_name,
                true,
                reps,
                prof_med,
            ));
            jobs.push(make_job(
                &format!("{base_name}/{}", PAR4.label()),
                &names[wi],
                mode_name,
                false,
                reps,
                par_med,
            ));
            for (_, r) in &prof {
                if let Some(p) = &r.prof {
                    spans.merge(p);
                }
            }
            eprintln!(
                "perf: {base_name:<16} wall {:.3}s plain / {:.3}s profiled / {:.3}s {}",
                plain_med.0,
                prof_med.0,
                par_med.0,
                PAR4.label(),
            );
        }
    }

    let (snap_job, snap_spans) = snapshot_microbench(scale, cfg)?;
    jobs.push(snap_job);
    spans.merge(&snap_spans);

    jobs.extend(fig7_sweep(scale, cfg, reps)?);

    let (host, ncpu) = host_fingerprint();
    Ok(BenchDoc {
        schema_version: SCHEMA_VERSION,
        git_rev: git_rev(std::path::Path::new(".")),
        host,
        ncpu,
        scale: scale_name,
        reps: reps as u64,
        prof_overhead_pct: mean(&overhead_pcts),
        jobs,
        spans,
    })
}

/// The rep with the median wall time (upper median for even rep counts).
fn median_rep(reps: &[(f64, RunResult)]) -> (f64, &RunResult) {
    let mut order: Vec<usize> = (0..reps.len()).collect();
    order.sort_by(|&a, &b| reps[a].0.total_cmp(&reps[b].0));
    let (wall, ref r) = reps[order[reps.len() / 2]];
    (wall, r)
}

fn make_job(
    name: &str,
    workload: &str,
    mode: &str,
    profiled: bool,
    reps: usize,
    (wall, result): (f64, &RunResult),
) -> PerfJob {
    let mut metrics = RunMetrics::from_stats(name, &result.stats, wall);
    if let Some(p) = &result.prof {
        metrics = metrics.with_prof(p);
    }
    PerfJob {
        name: name.to_string(),
        workload: workload.to_string(),
        mode: mode.to_string(),
        profiled,
        reps: reps as u64,
        metrics,
    }
}

/// Snapshot-codec microbench: advance a RaCCD Jacobi run to a mid-run
/// point, then encode/decode full snapshots a few times. The profiler's
/// `snap/encode` and `snap/decode` sites carry the payload bytes, so the
/// resulting job reports snapshot bytes/sec in both directions.
fn snapshot_microbench(scale: Scale, cfg: MachineConfig) -> Result<(PerfJob, ProfReport), String> {
    const JACOBI: usize = 3;
    const ROUNDS: usize = 4;
    let workloads = all_benchmarks(scale);
    let w = workloads[JACOBI].as_ref();

    let t0 = Instant::now();
    let mut driver = Driver::new(cfg, CoherenceMode::Raccd, w.build(), None, None);
    driver.attach_prof();
    for _ in 0..512 {
        if !driver.step(None) {
            break;
        }
    }
    let mut spans = ProfReport::empty();
    for _ in 0..ROUNDS {
        let s = driver.snapshot();
        let blob = s.to_bytes();
        let decoded =
            Snapshot::from_bytes(&blob).map_err(|e| format!("snapshot roundtrip: {e:?}"))?;
        let mut restored = Driver::restore(cfg, CoherenceMode::Raccd, w.build(), &decoded)
            .map_err(|e| format!("restore: {e:?}"))?;
        // Attaching the profiler credits the measured decode time.
        restored.attach_prof();
        if let Some(p) = restored.prof() {
            spans.merge(&p.report());
        }
    }
    if let Some(p) = driver.prof() {
        spans.merge(&p.report());
    }
    let wall = t0.elapsed().as_secs_f64();

    let metrics = RunMetrics {
        name: "snapshot-codec".to_string(),
        wall_seconds: wall,
        peak_rss_bytes: raccd_obs::peak_rss_bytes(),
        ..RunMetrics::default()
    }
    .with_prof(&spans);
    let enc = metrics
        .snap_encode_bytes_per_sec()
        .ok_or("snapshot microbench recorded no encode throughput")?;
    let dec = metrics
        .snap_decode_bytes_per_sec()
        .ok_or("snapshot microbench recorded no decode throughput")?;
    eprintln!(
        "perf: snapshot-codec    encode {}B/s decode {}B/s ({} bytes/round)",
        raccd_prof::fmt_si(enc),
        raccd_prof::fmt_si(dec),
        metrics.snap_encode_bytes / ROUNDS as u64,
    );
    Ok((
        PerfJob {
            name: "snapshot-codec".to_string(),
            workload: w.name().to_string(),
            mode: "raccd".to_string(),
            profiled: true,
            reps: ROUNDS as u64,
            metrics,
        },
        spans,
    ))
}

/// Engine-speedup measurement: advance the whole figure-7 matrix
/// (workloads × modes × directory ratios) **sequentially in-process**
/// under the serial engine and again under the epoch-parallel engine, so
/// the wall-clock ratio isolates the engine's intra-simulation speedup
/// from the job-level fan-out the figure binaries use. Every cell's
/// `Stats` must match bit for bit across engines; the medians over `reps`
/// become the `fig7-sweep/serial` and `fig7-sweep/par4` trajectory jobs.
fn fig7_sweep(scale: Scale, cfg: MachineConfig, reps: usize) -> Result<Vec<PerfJob>, String> {
    let cells = WORKLOADS.len() * MODES.len() * DIR_RATIOS.len();
    eprintln!(
        "perf: fig7-sweep {} cells x {{serial, {}}}, {} rep(s)",
        cells,
        PAR4.label(),
        reps
    );

    // One pass over every cell under `engine`; returns (wall, per-cell Stats).
    let sweep = |engine: Engine| -> (f64, Vec<Stats>) {
        let workloads = all_benchmarks(scale);
        let t0 = Instant::now();
        let mut stats = Vec::with_capacity(cells);
        for &bench_idx in &WORKLOADS {
            for (mode, _) in MODES {
                for &ratio in &DIR_RATIOS {
                    let exp = Experiment::new(cfg.with_dir_ratio(ratio), mode).with_engine(engine);
                    stats.push(exp.run(workloads[bench_idx].as_ref()).stats);
                }
            }
        }
        (t0.elapsed().as_secs_f64(), stats)
    };

    let mut serial: Vec<(f64, Vec<Stats>)> = Vec::new();
    let mut par: Vec<(f64, Vec<Stats>)> = Vec::new();
    for _ in 0..reps {
        serial.push(sweep(Engine::Serial));
        par.push(sweep(PAR4));
    }
    for (rep, (s, p)) in serial.iter().zip(par.iter()).enumerate() {
        for (cell, (ss, ps)) in s.1.iter().zip(p.1.iter()).enumerate() {
            if ss != ps {
                return Err(format!(
                    "fig7-sweep rep {rep} cell {cell}: epoch-parallel Stats \
                     diverged from the serial oracle"
                ));
            }
        }
        if rep > 0 && s.1 != serial[0].1 {
            return Err(format!(
                "fig7-sweep rep {rep}: non-deterministic serial Stats across reps"
            ));
        }
    }

    let median_wall = |walls: &mut Vec<f64>| -> f64 {
        walls.sort_by(f64::total_cmp);
        walls[walls.len() / 2]
    };
    let serial_wall = median_wall(&mut serial.iter().map(|r| r.0).collect());
    let par_wall = median_wall(&mut par.iter().map(|r| r.0).collect());
    eprintln!(
        "perf: fig7-sweep       wall {serial_wall:.3}s serial / {par_wall:.3}s {} \
         (engine speedup {:.2}x)",
        PAR4.label(),
        serial_wall / par_wall.max(1e-12),
    );

    // Whole-sweep throughput metrics: counters sum across cells, the wall
    // is the sweep's, so cycles/sec measures the engine end to end.
    let mut sum = Stats::default();
    for s in &serial[0].1 {
        sum.cycles += s.cycles;
        sum.refs_processed += s.refs_processed;
        sum.noc_traffic += s.noc_traffic;
        sum.tasks_executed += s.tasks_executed;
    }
    let job = |engine: Engine, wall: f64| -> PerfJob {
        let name = format!("fig7-sweep/{}", engine.label());
        PerfJob {
            name: name.clone(),
            workload: "fig7-sweep".to_string(),
            mode: "all".to_string(),
            profiled: false,
            reps: reps as u64,
            metrics: RunMetrics::from_stats(&name, &sum, wall),
        }
    };
    Ok(vec![job(Engine::Serial, serial_wall), job(PAR4, par_wall)])
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}
