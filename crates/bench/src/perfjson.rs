//! The `BENCH_*.json` performance-trajectory schema: emit, parse, compare.
//!
//! Each growth increment commits one `BENCH_<n>.json` at the repo root: a
//! pinned simulator-performance matrix (workload × system × profiler)
//! measured by the `perf` binary. The file is the repo's perf trajectory —
//! successive increments can be diffed, and `perf --compare` gates new
//! work against the last committed point (soft gate in CI: a regression
//! exits 1, a malformed file or broken tool exits 2).
//!
//! The format rides on the dependency-free JSON writer/parser in
//! [`raccd_obs::json`]; every field is explicit so a schema change is a
//! conscious `SCHEMA_VERSION` bump.

use raccd_obs::json::{self, Obj, Value};
use raccd_obs::RunMetrics;
use raccd_prof::{ProfReport, Site, SiteStats};

/// Current schema version; bump when the layout changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// Relative median-throughput drop that counts as a regression (15 %).
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// One matrix cell: a (workload, system, profiler) job's median metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfJob {
    /// Unique job label, `<workload>/<mode>[/prof]`.
    pub name: String,
    /// Workload name (Table II spelling).
    pub workload: String,
    /// Coherence mode label (`raccd` / `fullcoh`).
    pub mode: String,
    /// Whether the self-profiler was attached.
    pub profiled: bool,
    /// Repetitions this job ran; metrics are the median-wall rep.
    pub reps: u64,
    /// Median-of-runs metrics.
    pub metrics: RunMetrics,
}

/// A complete BENCH document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDoc {
    /// Schema version ([`SCHEMA_VERSION`] on emit).
    pub schema_version: u64,
    /// `git rev-parse --short HEAD` at generation time (or `unknown`).
    pub git_rev: String,
    /// Host fingerprint: CPU model, logical CPUs, OS/arch.
    pub host: String,
    /// Logical CPUs on the generating host.
    pub ncpu: u64,
    /// Workload scale the matrix ran at.
    pub scale: String,
    /// Repetitions per job.
    pub reps: u64,
    /// Measured profiler overhead: mean relative wall-time delta of
    /// profiled vs unprofiled twins, percent (negative = noise).
    pub prof_overhead_pct: f64,
    /// The matrix, in pinned order.
    pub jobs: Vec<PerfJob>,
    /// Merged span table across every profiled run (incl. the snapshot
    /// microbench).
    pub spans: ProfReport,
}

impl BenchDoc {
    /// Render the document: stable key order, one job/span per line so
    /// committed files diff cleanly across increments.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let field = |out: &mut String, k: &str, v: &str, comma: bool| {
            out.push_str(&format!(
                "  {}: {}{}\n",
                json::escape(k),
                v,
                if comma { "," } else { "" }
            ));
        };
        field(
            &mut out,
            "schema_version",
            &self.schema_version.to_string(),
            true,
        );
        field(&mut out, "git_rev", &json::escape(&self.git_rev), true);
        field(&mut out, "host", &json::escape(&self.host), true);
        field(&mut out, "ncpu", &self.ncpu.to_string(), true);
        field(&mut out, "scale", &json::escape(&self.scale), true);
        field(&mut out, "reps", &self.reps.to_string(), true);
        field(
            &mut out,
            "prof_overhead_pct",
            &json::num(self.prof_overhead_pct),
            true,
        );
        out.push_str("  \"jobs\": [\n");
        for (i, j) in self.jobs.iter().enumerate() {
            let obj = Obj::new()
                .str("name", &j.name)
                .str("workload", &j.workload)
                .str("mode", &j.mode)
                .bool("profiled", j.profiled)
                .u64("reps", j.reps)
                .raw("metrics", j.metrics.to_json())
                .render();
            out.push_str(&format!(
                "    {obj}{}\n",
                if i + 1 < self.jobs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"spans\": [\n");
        let rows: Vec<(Site, SiteStats)> = Site::ALL
            .into_iter()
            .map(|s| (s, self.spans.get(s)))
            .filter(|(_, st)| st.count > 0)
            .collect();
        for (i, (site, s)) in rows.iter().enumerate() {
            let obj = Obj::new()
                .str("site", site.name())
                .u64("count", s.count)
                .u64("total_ns", s.total_ns)
                .u64("min_ns", s.min_ns)
                .u64("max_ns", s.max_ns)
                .u64("units", s.units)
                .render();
            out.push_str(&format!(
                "    {obj}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse and validate a BENCH document.
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let v = json::parse(text).map_err(|e| format!("invalid json: {e}"))?;
        let schema_version = req_u64(&v, "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {schema_version} (this tool reads {SCHEMA_VERSION})"
            ));
        }
        let jobs_v = v.get("jobs").ok_or("missing jobs")?;
        let mut jobs = Vec::new();
        for jv in jobs_v.items() {
            jobs.push(PerfJob {
                name: req_str(jv, "name")?,
                workload: req_str(jv, "workload")?,
                mode: req_str(jv, "mode")?,
                profiled: matches!(jv.get("profiled"), Some(Value::Bool(true))),
                reps: req_u64(jv, "reps")?,
                metrics: metrics_from_json(jv.get("metrics").ok_or("missing metrics")?)?,
            });
        }
        if jobs.is_empty() {
            return Err("empty job matrix".into());
        }
        let mut spans = ProfReport::empty();
        for sv in v.get("spans").ok_or("missing spans")?.items() {
            let name = req_str(sv, "site")?;
            let site = Site::from_name(&name).ok_or(format!("unknown site {name:?}"))?;
            spans.set(
                site,
                SiteStats {
                    count: req_u64(sv, "count")?,
                    total_ns: req_u64(sv, "total_ns")?,
                    min_ns: req_u64(sv, "min_ns")?,
                    max_ns: req_u64(sv, "max_ns")?,
                    units: req_u64(sv, "units")?,
                },
            );
        }
        Ok(BenchDoc {
            schema_version,
            git_rev: req_str(&v, "git_rev")?,
            host: req_str(&v, "host")?,
            ncpu: req_u64(&v, "ncpu")?,
            scale: req_str(&v, "scale")?,
            reps: req_u64(&v, "reps")?,
            prof_overhead_pct: req_f64(&v, "prof_overhead_pct")?,
            jobs,
            spans,
        })
    }
}

/// Reconstruct [`RunMetrics`] from its [`RunMetrics::to_json`] object.
/// Derived rates are recomputed, not read back, so the struct stays the
/// single source of truth.
pub fn metrics_from_json(v: &Value) -> Result<RunMetrics, String> {
    Ok(RunMetrics {
        name: req_str(v, "name")?,
        wall_seconds: req_f64(v, "wall_seconds")?,
        sim_cycles: req_u64(v, "sim_cycles")?,
        refs_processed: req_u64(v, "refs_processed")?,
        protocol_events: req_u64(v, "protocol_events")?,
        tasks_executed: req_u64(v, "tasks_executed")?,
        snap_encode_bytes: req_u64(v, "snap_encode_bytes")?,
        snap_encode_ns: req_u64(v, "snap_encode_ns")?,
        snap_decode_bytes: req_u64(v, "snap_decode_bytes")?,
        snap_decode_ns: req_u64(v, "snap_decode_ns")?,
        peak_rss_bytes: req_u64(v, "peak_rss_bytes")?,
    })
}

/// Outcome of comparing a candidate run against a baseline document.
#[derive(Debug, Default)]
pub struct CompareOutcome {
    /// Human-readable per-job verdict lines.
    pub lines: Vec<String>,
    /// Jobs present in both documents.
    pub compared: usize,
    /// Jobs whose median throughput regressed beyond tolerance.
    pub regressions: usize,
}

impl CompareOutcome {
    /// True when every compared job is within tolerance.
    pub fn clean(&self) -> bool {
        self.regressions == 0
    }
}

/// Compare candidate vs baseline on median simulated-cycles-per-second.
/// A job regresses when its candidate throughput falls more than
/// [`REGRESSION_TOLERANCE`] below the baseline. Jobs present on only one
/// side are reported but never gate (the matrix is allowed to grow).
///
/// When the two documents carry different host fingerprints the absolute
/// throughputs are not comparable (different CPU, core count, or both), so
/// over-tolerance drops are reported as `WARN (host differs)` instead of
/// counting as regressions — the gate only ever fires on like-for-like
/// hardware.
pub fn compare(baseline: &BenchDoc, candidate: &BenchDoc) -> CompareOutcome {
    let mut out = CompareOutcome::default();
    let host_differs = baseline.host != candidate.host;
    if host_differs {
        out.lines.push(format!(
            "  host fingerprint differs — throughput deltas are advisory only\n\
             \x20   baseline:  {}\n\
             \x20   candidate: {}",
            baseline.host, candidate.host
        ));
    }
    for b in &baseline.jobs {
        let Some(c) = candidate.jobs.iter().find(|c| c.name == b.name) else {
            out.lines
                .push(format!("  {:<28} missing from candidate", b.name));
            continue;
        };
        out.compared += 1;
        let (base, cand) = (b.metrics.cycles_per_sec(), c.metrics.cycles_per_sec());
        if base <= 0.0 {
            out.lines
                .push(format!("  {:<28} baseline has no throughput", b.name));
            continue;
        }
        let delta = (cand - base) / base;
        let verdict = if delta < -REGRESSION_TOLERANCE {
            if host_differs {
                "WARN (host differs)"
            } else {
                out.regressions += 1;
                "REGRESSED"
            }
        } else {
            "ok"
        };
        out.lines.push(format!(
            "  {:<28} {:>10}/s -> {:>10}/s  {:>+7.1}%  {}",
            b.name,
            raccd_prof::fmt_si(base),
            raccd_prof::fmt_si(cand),
            delta * 100.0,
            verdict
        ));
    }
    for c in &candidate.jobs {
        if !baseline.jobs.iter().any(|b| b.name == c.name) {
            out.lines
                .push(format!("  {:<28} new job (no baseline)", c.name));
        }
    }
    out
}

/// Host fingerprint string: CPU model, logical CPU count, OS/arch.
pub fn host_fingerprint() -> (String, u64) {
    let ncpu = std::thread::available_parallelism()
        .map(|p| p.get() as u64)
        .unwrap_or(1);
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown-cpu".to_string());
    (
        format!(
            "{cpu} ({ncpu} cpus, {}-{})",
            std::env::consts::OS,
            std::env::consts::ARCH
        ),
        ncpu,
    )
}

/// `git rev-parse --short HEAD` in `dir`, or `"unknown"`.
pub fn git_rev(dir: &std::path::Path) -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(dir)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    req_f64(v, key).map(|f| f as u64)
}

fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or(format!("missing/non-numeric {key:?}"))
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or(format!("missing/non-string {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> BenchDoc {
        let mut spans = ProfReport::empty();
        spans.set(
            Site::SnapEncode,
            SiteStats {
                count: 3,
                total_ns: 900_000,
                min_ns: 200_000,
                max_ns: 400_000,
                units: 3 << 20,
            },
        );
        let job = |name: &str, mode: &str, profiled: bool, cycles: u64| PerfJob {
            name: name.to_string(),
            workload: "Jacobi".to_string(),
            mode: mode.to_string(),
            profiled,
            reps: 3,
            metrics: RunMetrics {
                name: name.to_string(),
                wall_seconds: 0.25,
                sim_cycles: cycles,
                refs_processed: 1000,
                protocol_events: 400,
                tasks_executed: 16,
                ..RunMetrics::default()
            },
        };
        BenchDoc {
            schema_version: SCHEMA_VERSION,
            git_rev: "abc1234".to_string(),
            host: "test-host (8 cpus, linux-x86_64)".to_string(),
            ncpu: 8,
            scale: "test".to_string(),
            reps: 3,
            prof_overhead_pct: 1.25,
            jobs: vec![
                job("Jacobi/raccd", "raccd", false, 1_000_000),
                job("Jacobi/raccd/prof", "raccd", true, 1_000_000),
            ],
            spans,
        }
    }

    #[test]
    fn roundtrips_exactly() {
        let d = doc();
        let parsed = BenchDoc::parse(&d.render()).expect("parses");
        assert_eq!(parsed, d);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(BenchDoc::parse("{}").is_err());
        let other_version = doc()
            .render()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(BenchDoc::parse(&other_version).unwrap_err().contains("99"));
        let bad_site = doc().render().replace("snap/encode", "snap/bogus");
        assert!(BenchDoc::parse(&bad_site).unwrap_err().contains("bogus"));
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let base = doc();
        let mut cand = doc();
        // 10 % slower: within the 15 % tolerance.
        cand.jobs[0].metrics.wall_seconds = 0.25 / 0.9;
        let out = compare(&base, &cand);
        assert_eq!(out.compared, 2);
        assert!(out.clean(), "{:?}", out.lines);
        // 40 % slower: regression.
        cand.jobs[0].metrics.wall_seconds = 0.25 / 0.6;
        let out = compare(&base, &cand);
        assert_eq!(out.regressions, 1);
        assert!(out.lines.iter().any(|l| l.contains("REGRESSED")));
    }

    #[test]
    fn compare_exempts_regressions_across_hosts() {
        let base = doc();
        let mut cand = doc();
        cand.host = "other-host (1 cpus, linux-aarch64)".to_string();
        // 40 % slower — would regress on the same host — but the candidate
        // was measured on different hardware, so it only warns.
        cand.jobs[0].metrics.wall_seconds = 0.25 / 0.6;
        let out = compare(&base, &cand);
        assert_eq!(out.compared, 2);
        assert!(out.clean(), "{:?}", out.lines);
        assert!(out.lines.iter().any(|l| l.contains("WARN (host differs)")));
        assert!(out
            .lines
            .iter()
            .any(|l| l.contains("host fingerprint differs")));
        assert!(!out.lines.iter().any(|l| l.contains("REGRESSED")));
    }

    #[test]
    fn compare_still_gates_on_same_host() {
        // Same fingerprint, same 40 % drop: the gate must fire (the
        // cross-host exemption must not swallow real regressions).
        let base = doc();
        let mut cand = doc();
        cand.jobs[0].metrics.wall_seconds = 0.25 / 0.6;
        let out = compare(&base, &cand);
        assert_eq!(out.regressions, 1);
        assert!(!out.clean());
        assert!(!out
            .lines
            .iter()
            .any(|l| l.contains("host fingerprint differs")));
    }

    #[test]
    fn compare_tolerates_matrix_growth() {
        let base = doc();
        let mut cand = doc();
        cand.jobs.push(PerfJob {
            name: "MD5/fullcoh".to_string(),
            ..cand.jobs[0].clone()
        });
        let out = compare(&base, &cand);
        assert!(out.clean());
        assert!(out.lines.iter().any(|l| l.contains("new job")));
        // And shrinkage is reported but doesn't gate.
        let out = compare(&cand, &base);
        assert!(out.clean());
        assert!(out.lines.iter().any(|l| l.contains("missing")));
    }
}
