#![warn(missing_docs)]

//! Mesh Network-on-Chip model.
//!
//! Table I: "NoC: 4×4 mesh, link 1 cycle, router 1 cycle". We model a k×k
//! mesh with dimension-ordered (XY) routing. Each tile hosts a core with its
//! L1, one LLC bank and one directory bank; memory controllers sit at the
//! four corner tiles (a common gem5/ruby layout).
//!
//! The model provides (a) latency of a message between two tiles and (b)
//! flit accounting for Figure 7c (NoC traffic). A control message is one
//! flit; a data message carries a 64-byte cache line over `1 + 64/flit`
//! flits (16-byte flits → 5 flits).
//!
//! Beyond the single-socket mesh, [`Mesh::numa2`] builds a **2-socket
//! NUMA topology**: two k×k meshes joined by one inter-socket link with
//! its own (higher) latency. Tiles `0..k²` are socket 0, `k²..2k²` socket
//! 1; cross-socket messages route XY to the local gateway tile, traverse
//! the inter-socket link (one hop at `xlink_cycles` instead of
//! `link_cycles`), and route XY on to the destination. Each socket keeps
//! its own corner memory controllers, and cross-link crossings are
//! counted separately so sweeps can report NUMA traffic.

use std::fmt;

const BLOCK_SIZE: u64 = 64;

/// Which interconnect a machine is built on (registry for the
/// `--topology` flag and the campaign spec).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Topology {
    /// Single k×k mesh (Table I).
    #[default]
    Mesh,
    /// Two k×k mesh sockets joined by one inter-socket link.
    Numa2,
}

impl Topology {
    /// Every topology, in registry order.
    pub const ALL: [Topology; 2] = [Topology::Mesh, Topology::Numa2];

    /// Canonical lower-case label (round-trips through
    /// [`Topology::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            Topology::Mesh => "mesh",
            Topology::Numa2 => "numa2",
        }
    }

    /// Parse a topology label (case-insensitive).
    pub fn parse(s: &str) -> Option<Topology> {
        match s.to_ascii_lowercase().as_str() {
            "mesh" => Some(Topology::Mesh),
            "numa2" => Some(Topology::Numa2),
            _ => None,
        }
    }

    /// Number of mesh sockets.
    pub fn sockets(self) -> usize {
        match self {
            Topology::Mesh => 1,
            Topology::Numa2 => 2,
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl raccd_snap::Snap for Topology {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        w.u8(match self {
            Topology::Mesh => 0,
            Topology::Numa2 => 1,
        });
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        match r.u8()? {
            0 => Ok(Topology::Mesh),
            1 => Ok(Topology::Numa2),
            _ => Err(raccd_snap::SnapError::Invalid("topology tag")),
        }
    }
}

/// Categories of NoC messages, counted separately for diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgClass {
    /// Request without data (GetS/GetX/Upgrade, NC variants too).
    Request,
    /// Response carrying a cache line.
    DataResponse,
    /// Control response (ack, invalidation, forward request).
    Control,
    /// Write-back carrying a cache line.
    WriteBack,
}

/// Traffic attributable to injected faults and their recovery: dropped,
/// corrupted and duplicated deliveries plus the NACKs and retries the
/// recovery machinery generated. Kept separate from the nominal class
/// counters so fault campaigns can report the overhead they caused.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultTraffic {
    /// Messages lost in flight (their flits still traversed links).
    pub dropped: u64,
    /// Messages delivered with a corrupted payload.
    pub corrupted: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// NACK control messages returned by receivers.
    pub nacks: u64,
    /// Retransmissions performed by senders.
    pub retries: u64,
    /// Messages held back by injected delays.
    pub delayed: u64,
}

/// Flit and latency accounting for a k×k mesh NoC.
///
/// ```
/// use raccd_noc::{Mesh, MsgClass};
/// let mut mesh = Mesh::new(4, 1, 1, 16); // Table I: 4×4, 1-cycle link/router
/// let latency = mesh.send(0, 15, MsgClass::DataResponse);
/// assert_eq!(latency, 1 + 6 * 2);        // 6 hops across the mesh
/// assert_eq!(mesh.total_flits(), 5);     // 64-byte line in 16-byte flits
/// ```
#[derive(Clone, Debug)]
pub struct Mesh {
    k: usize,
    /// Mesh sockets (1 = single mesh, 2 = NUMA pair).
    sockets: usize,
    link_cycles: u64,
    router_cycles: u64,
    /// Inter-socket link traversal cycles (replaces `link_cycles` for the
    /// one cross-socket hop; unused when `sockets == 1`).
    xlink_cycles: u64,
    flit_bytes: u64,
    /// Total flit·hops (the paper's "NoC traffic" metric is proportional to
    /// flits traversing links).
    flit_hops: u64,
    /// Flits injected, by class.
    flits_by_class: [u64; 4],
    /// Messages injected, by class.
    msgs_by_class: [u64; 4],
    /// Messages that crossed the inter-socket link.
    xlink_msgs: u64,
    /// Fault-attributable traffic (all zero without a fault plane).
    fault: FaultTraffic,
}

impl Mesh {
    /// Create a k×k mesh (Table I: k = 4) with per-hop link and router
    /// latencies and a flit width in bytes.
    pub fn new(k: usize, link_cycles: u64, router_cycles: u64, flit_bytes: u64) -> Self {
        assert!(k > 0 && flit_bytes > 0);
        Mesh {
            k,
            sockets: 1,
            link_cycles,
            router_cycles,
            xlink_cycles: 0,
            flit_bytes,
            flit_hops: 0,
            flits_by_class: [0; 4],
            msgs_by_class: [0; 4],
            xlink_msgs: 0,
            fault: FaultTraffic::default(),
        }
    }

    /// Create a 2-socket NUMA topology: two k×k meshes joined by one
    /// inter-socket link costing `xlink_cycles` per traversal. The
    /// gateway tiles are the east end of socket 0's row 0 (local tile
    /// `k-1`) and the west end of socket 1's row 0 (local tile `0`).
    pub fn numa2(
        k: usize,
        link_cycles: u64,
        router_cycles: u64,
        flit_bytes: u64,
        xlink_cycles: u64,
    ) -> Self {
        let mut m = Mesh::new(k, link_cycles, router_cycles, flit_bytes);
        m.sockets = 2;
        m.xlink_cycles = xlink_cycles;
        m
    }

    /// Build for a [`Topology`]: the single mesh or the NUMA pair.
    pub fn for_topology(
        topology: Topology,
        k: usize,
        link_cycles: u64,
        router_cycles: u64,
        flit_bytes: u64,
        xlink_cycles: u64,
    ) -> Self {
        match topology {
            Topology::Mesh => Mesh::new(k, link_cycles, router_cycles, flit_bytes),
            Topology::Numa2 => Mesh::numa2(k, link_cycles, router_cycles, flit_bytes, xlink_cycles),
        }
    }

    /// Number of tiles (per-socket tiles × sockets).
    pub fn tiles(&self) -> usize {
        self.sockets * self.k * self.k
    }

    /// Number of mesh sockets (1 or 2).
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Socket of a tile id.
    #[inline]
    pub fn socket_of(&self, tile: usize) -> usize {
        tile / (self.k * self.k)
    }

    /// (socket, local tile) of a global tile id.
    #[inline]
    fn split(&self, tile: usize) -> (usize, usize) {
        let per = self.k * self.k;
        (tile / per, tile % per)
    }

    /// (x, y) coordinate of a *local* tile id within its socket.
    #[inline]
    fn coords(&self, local: usize) -> (usize, usize) {
        (local % self.k, local / self.k)
    }

    /// Manhattan distance between two local tiles of one socket.
    #[inline]
    fn local_hops(&self, from: usize, to: usize) -> u64 {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }

    /// The local gateway tile of a socket: socket 0 exits east of row 0
    /// (local `k-1`), socket 1 exits west of row 0 (local `0`).
    #[inline]
    fn gateway(&self, socket: usize) -> usize {
        if socket == 0 {
            self.k - 1
        } else {
            0
        }
    }

    /// Hop distance between two tiles: XY within a socket; cross-socket
    /// routes gateway-to-gateway, the inter-socket link counting as one
    /// hop.
    #[inline]
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        let (sf, lf) = self.split(from);
        let (st, lt) = self.split(to);
        if sf == st {
            self.local_hops(lf, lt)
        } else {
            self.local_hops(lf, self.gateway(sf)) + 1 + self.local_hops(self.gateway(st), lt)
        }
    }

    /// The memory controller tile serving a given home bank: nearest of
    /// the home socket's four corner tiles (ties broken by lowest tile
    /// id). Each NUMA socket keeps its own controllers — memory is
    /// socket-local.
    pub fn mem_controller_for(&self, home: usize) -> usize {
        let (socket, local) = self.split(home);
        let base = socket * self.k * self.k;
        let corners = [0, self.k - 1, self.k * (self.k - 1), self.k * self.k - 1];
        base + *corners
            .iter()
            .min_by_key(|&&c| (self.local_hops(local, c), c))
            .expect("corners non-empty")
    }

    /// Latency in cycles of one message from `from` to `to`: every hop
    /// costs a link plus a router traversal, plus one router at
    /// injection. A cross-socket message pays `xlink_cycles` instead of
    /// `link_cycles` for the inter-socket hop.
    #[inline]
    pub fn latency(&self, from: usize, to: usize) -> u64 {
        let h = self.hops(from, to);
        let base = self.router_cycles + h * (self.link_cycles + self.router_cycles);
        if self.socket_of(from) != self.socket_of(to) {
            base - self.link_cycles + self.xlink_cycles
        } else {
            base
        }
    }

    /// Flits of a message of `class` (head flit + payload flits).
    #[inline]
    pub fn flits(&self, class: MsgClass) -> u64 {
        match class {
            MsgClass::Request | MsgClass::Control => 1,
            MsgClass::DataResponse | MsgClass::WriteBack => {
                1 + BLOCK_SIZE.div_ceil(self.flit_bytes)
            }
        }
    }

    /// Send a message: account traffic and return its latency.
    pub fn send(&mut self, from: usize, to: usize, class: MsgClass) -> u64 {
        let flits = self.flits(class);
        let hops = self.hops(from, to);
        self.flit_hops += flits * hops.max(1); // local delivery still moves flits
        self.flits_by_class[class as usize] += flits;
        self.msgs_by_class[class as usize] += 1;
        if self.socket_of(from) != self.socket_of(to) {
            self.xlink_msgs += 1;
        }
        self.latency(from, to)
    }

    /// Messages that crossed the inter-socket link (0 on a single mesh).
    pub fn xlink_crossings(&self) -> u64 {
        self.xlink_msgs
    }

    /// Total flit·hops so far (Figure 7c's traffic metric).
    pub fn traffic(&self) -> u64 {
        self.flit_hops
    }

    /// Messages sent of one class.
    pub fn messages(&self, class: MsgClass) -> u64 {
        self.msgs_by_class[class as usize]
    }

    /// Flits injected of one class.
    pub fn flits_injected(&self, class: MsgClass) -> u64 {
        self.flits_by_class[class as usize]
    }

    /// Sum of flits injected across classes.
    pub fn total_flits(&self) -> u64 {
        self.flits_by_class.iter().sum()
    }

    /// Send a message that is lost in flight: its flits still traverse
    /// links (and are charged to traffic) but nothing is delivered. The
    /// returned latency is the wire time the sender's timeout must cover.
    pub fn send_dropped(&mut self, from: usize, to: usize, class: MsgClass) -> u64 {
        let lat = self.send(from, to, class);
        self.fault.dropped += 1;
        lat
    }

    /// Send a message whose payload arrives corrupted: full traversal and
    /// delivery, but the receiver's checksum will reject it.
    pub fn send_corrupted(&mut self, from: usize, to: usize, class: MsgClass) -> u64 {
        let lat = self.send(from, to, class);
        self.fault.corrupted += 1;
        lat
    }

    /// Send a message delivered twice: double the flits on the wire, one
    /// latency (the copies pipeline back to back).
    pub fn send_duplicate(&mut self, from: usize, to: usize, class: MsgClass) -> u64 {
        let lat = self.send(from, to, class);
        self.send(from, to, class);
        self.fault.duplicated += 1;
        lat
    }

    /// Account one NACK control message from `from` back to `to` and
    /// return its latency.
    pub fn send_nack(&mut self, from: usize, to: usize) -> u64 {
        let lat = self.send(from, to, MsgClass::Control);
        self.fault.nacks += 1;
        lat
    }

    /// Note one retransmission (the retry itself is a normal `send`).
    pub fn note_retry(&mut self) {
        self.fault.retries += 1;
    }

    /// Note one injected-delay delivery.
    pub fn note_delayed(&mut self) {
        self.fault.delayed += 1;
    }

    /// Fault-attributable traffic counters.
    pub fn fault_traffic(&self) -> FaultTraffic {
        self.fault
    }
}

impl raccd_snap::Snap for FaultTraffic {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        for v in [
            self.dropped,
            self.corrupted,
            self.duplicated,
            self.nacks,
            self.retries,
            self.delayed,
        ] {
            w.u64(v);
        }
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        Ok(FaultTraffic {
            dropped: r.u64()?,
            corrupted: r.u64()?,
            duplicated: r.u64()?,
            nacks: r.u64()?,
            retries: r.u64()?,
            delayed: r.u64()?,
        })
    }
}

impl raccd_snap::Snap for Mesh {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        self.k.save(w);
        self.sockets.save(w);
        w.u64(self.link_cycles);
        w.u64(self.router_cycles);
        w.u64(self.xlink_cycles);
        w.u64(self.flit_bytes);
        w.u64(self.flit_hops);
        self.flits_by_class.save(w);
        self.msgs_by_class.save(w);
        w.u64(self.xlink_msgs);
        self.fault.save(w);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        let k: usize = Snap::load(r)?;
        let sockets: usize = Snap::load(r)?;
        let link_cycles = r.u64()?;
        let router_cycles = r.u64()?;
        let xlink_cycles = r.u64()?;
        let flit_bytes = r.u64()?;
        if k == 0 || flit_bytes == 0 || !(1..=2).contains(&sockets) {
            return Err(raccd_snap::SnapError::Invalid("mesh geometry"));
        }
        Ok(Mesh {
            k,
            sockets,
            link_cycles,
            router_cycles,
            xlink_cycles,
            flit_bytes,
            flit_hops: r.u64()?,
            flits_by_class: Snap::load(r)?,
            msgs_by_class: Snap::load(r)?,
            xlink_msgs: r.u64()?,
            fault: Snap::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(4, 1, 1, 16)
    }

    #[test]
    fn hop_distances_on_4x4() {
        let m = mesh();
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 3), 3); // same row
        assert_eq!(m.hops(0, 15), 6); // opposite corner
        assert_eq!(m.hops(5, 10), 2); // (1,1)→(2,2)
        assert_eq!(m.hops(3, 12), 6); // (3,0)→(0,3)
    }

    #[test]
    fn hops_symmetric() {
        let m = mesh();
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(m.hops(a, b), m.hops(b, a));
            }
        }
    }

    #[test]
    fn latency_matches_table1_per_hop_costs() {
        let m = mesh();
        // link 1 + router 1 per hop, +1 injection router.
        assert_eq!(m.latency(0, 1), 1 + 2);
        assert_eq!(m.latency(0, 15), 1 + 6 * 2);
        assert_eq!(m.latency(7, 7), 1);
    }

    #[test]
    fn data_messages_carry_line_flits() {
        let m = mesh();
        assert_eq!(m.flits(MsgClass::Request), 1);
        assert_eq!(m.flits(MsgClass::DataResponse), 1 + 4); // 64 B / 16 B
        assert_eq!(m.flits(MsgClass::WriteBack), 5);
        assert_eq!(m.flits(MsgClass::Control), 1);
    }

    #[test]
    fn traffic_accumulates_flit_hops() {
        let mut m = mesh();
        m.send(0, 1, MsgClass::Request); // 1 flit × 1 hop
        m.send(0, 15, MsgClass::DataResponse); // 5 flits × 6 hops
        assert_eq!(m.traffic(), 1 + 30);
        assert_eq!(m.messages(MsgClass::Request), 1);
        assert_eq!(m.total_flits(), 6);
    }

    #[test]
    fn local_delivery_counts_minimum_traffic() {
        let mut m = mesh();
        m.send(3, 3, MsgClass::DataResponse);
        assert_eq!(m.traffic(), 5);
    }

    #[test]
    fn mem_controllers_are_nearest_corner() {
        let m = mesh();
        assert_eq!(m.mem_controller_for(0), 0);
        assert_eq!(m.mem_controller_for(5), 0); // (1,1): corner 0 at 2 hops
        assert_eq!(m.mem_controller_for(7), 3); // (3,1): corner 3 at 1 hop
        assert_eq!(m.mem_controller_for(14), 15); // (2,3): corner 15 at 1 hop
    }

    #[test]
    fn fault_sends_account_traffic_and_counters() {
        let mut m = mesh();
        assert_eq!(m.fault_traffic(), FaultTraffic::default());

        // Dropped message: flits on the wire, counted as dropped.
        let lat = m.send_dropped(0, 1, MsgClass::Request);
        assert_eq!(lat, m.latency(0, 1));
        assert_eq!(m.traffic(), 1);

        // Duplicate data message: double flits, single latency.
        m.send_duplicate(0, 15, MsgClass::DataResponse);
        assert_eq!(m.traffic(), 1 + 2 * 30);
        assert_eq!(m.total_flits(), 1 + 10);

        // Corrupt + NACK + retry accounting.
        m.send_corrupted(0, 1, MsgClass::DataResponse);
        m.send_nack(1, 0);
        m.note_retry();
        m.note_delayed();

        let f = m.fault_traffic();
        assert_eq!(f.dropped, 1);
        assert_eq!(f.duplicated, 1);
        assert_eq!(f.corrupted, 1);
        assert_eq!(f.nacks, 1);
        assert_eq!(f.retries, 1);
        assert_eq!(f.delayed, 1);
        // NACK is a control message in the nominal class counters too.
        assert_eq!(m.messages(MsgClass::Control), 1);
    }

    #[test]
    fn works_for_other_mesh_sizes() {
        let m = Mesh::new(8, 1, 1, 16);
        assert_eq!(m.tiles(), 64);
        assert_eq!(m.hops(0, 63), 14);
    }

    #[test]
    fn topology_labels_roundtrip() {
        for t in Topology::ALL {
            assert_eq!(Topology::parse(t.label()), Some(t));
        }
        assert_eq!(Topology::parse("NUMA2"), Some(Topology::Numa2));
        assert_eq!(Topology::parse("torus"), None);
        assert_eq!(Topology::Mesh.sockets(), 1);
        assert_eq!(Topology::Numa2.sockets(), 2);
    }

    #[test]
    fn numa2_has_two_sockets_of_tiles() {
        let m = Mesh::numa2(2, 1, 1, 16, 8);
        assert_eq!(m.tiles(), 8);
        assert_eq!(m.sockets(), 2);
        assert_eq!(m.socket_of(3), 0);
        assert_eq!(m.socket_of(4), 1);
    }

    #[test]
    fn numa2_intra_socket_routing_matches_single_mesh() {
        let single = Mesh::new(2, 1, 1, 16);
        let numa = Mesh::numa2(2, 1, 1, 16, 8);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(numa.hops(a, b), single.hops(a, b));
                assert_eq!(numa.latency(a, b), single.latency(a, b));
                // Socket 1 mirrors socket 0.
                assert_eq!(numa.hops(4 + a, 4 + b), single.hops(a, b));
            }
        }
    }

    #[test]
    fn numa2_cross_socket_pays_the_xlink() {
        // k=2: socket-0 gateway = local 1, socket-1 gateway = local 0
        // (global 4). Tile 0 → tile 4: 1 hop to the gateway, 1 cross-link
        // hop, 0 hops on the far side.
        let m = Mesh::numa2(2, 1, 1, 16, 8);
        assert_eq!(m.hops(0, 4), 2);
        assert_eq!(m.hops(1, 4), 1, "gateway to gateway is the link alone");
        // Latency swaps the cross hop's link cycle for xlink_cycles:
        // router + 2*(link+router) - link + xlink = 1 + 4 - 1 + 8.
        assert_eq!(m.latency(0, 4), 12);
        assert_eq!(m.latency(4, 0), m.latency(0, 4), "symmetric");
        // Far corners: local 3 → gateway 1 (1 hop), link, gateway 4 →
        // global 7 (local 3, 2 hops): 4 hops total.
        assert_eq!(m.hops(3, 7), 4);
    }

    #[test]
    fn numa2_counts_cross_link_crossings() {
        let mut m = Mesh::numa2(2, 1, 1, 16, 8);
        m.send(0, 1, MsgClass::Request);
        assert_eq!(m.xlink_crossings(), 0);
        m.send(0, 4, MsgClass::DataResponse);
        m.send(7, 2, MsgClass::Control);
        assert_eq!(m.xlink_crossings(), 2);
        // Traffic counts the cross hop too: 1 flit × 1 hop (request) +
        // 5 flits × 2 hops (data) + 1 flit × 5 hops (control, 7→2).
        assert_eq!(m.hops(7, 2), 5);
        assert_eq!(m.traffic(), 1 + 10 + 5);
    }

    #[test]
    fn numa2_memory_is_socket_local() {
        let m = Mesh::numa2(4, 1, 1, 16, 8);
        assert_eq!(m.mem_controller_for(0), 0);
        assert_eq!(m.mem_controller_for(5), 0);
        // Socket 1 homes resolve to socket-1 corners.
        assert_eq!(m.mem_controller_for(16), 16);
        assert_eq!(m.mem_controller_for(16 + 7), 16 + 3);
        assert_eq!(m.mem_controller_for(16 + 14), 16 + 15);
    }

    #[test]
    fn numa2_snap_roundtrips() {
        let mut m = Mesh::numa2(2, 1, 1, 16, 8);
        m.send(0, 5, MsgClass::WriteBack);
        let bytes = raccd_snap::encode(&m);
        let back: Mesh = raccd_snap::decode(&bytes).expect("decodes");
        assert_eq!(back.sockets(), 2);
        assert_eq!(back.xlink_crossings(), 1);
        assert_eq!(back.traffic(), m.traffic());
        assert_eq!(back.latency(0, 5), m.latency(0, 5));
    }
}
