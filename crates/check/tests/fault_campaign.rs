//! The full fault campaign: 100+ seeded (workload × fault-plan)
//! combinations closing the loop between the fault plane and the oracle.
//!
//! Every combination must land in one of two buckets:
//!
//! * recovered — completed bit-identical to its fault-free twin with a
//!   clean collecting shadow checker, or
//! * detected — aborted loudly by the watchdog or a recovery budget.
//!
//! Silent corruption — a completed run whose memory, read checksums or
//! checker report differ from the twin — fails the campaign.

use raccd_check::{run_campaign, standard_plans, Expectation, GraphParams, Verdict};
use raccd_sim::MachineConfig;

fn small_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::scaled();
    cfg.ncores = 4;
    cfg.mesh_k = 2;
    cfg
}

#[test]
fn campaign_yields_zero_silent_corruptions() {
    let plans = standard_plans();
    let seeds: Vec<u64> = (1..=8).collect();
    let rep = run_campaign(small_cfg(), GraphParams::small(0), &seeds, &plans);

    assert_eq!(rep.outcomes.len(), seeds.len() * plans.len());
    assert!(
        rep.outcomes.len() >= 100,
        "campaign must cover at least 100 combinations, got {}",
        rep.outcomes.len()
    );

    let silent = rep.silent_corruptions();
    assert!(silent.is_empty(), "silent corruptions:\n{:#?}", silent);
    let fails = rep.expectation_failures(&plans);
    assert!(fails.is_empty(), "expectation failures:\n{fails:#?}");

    let (recovered, detected, silent) = rep.counts();
    assert_eq!(silent, 0);
    let detect_plans = plans
        .iter()
        .filter(|p| p.expect == Expectation::Detect)
        .count();
    assert!(
        detected >= detect_plans * seeds.len(),
        "every unrecoverable plan must be detected on every seed \
         ({detected} detected < {} expected)",
        detect_plans * seeds.len()
    );
    assert!(
        recovered >= (plans.len() - detect_plans) * seeds.len() / 2,
        "most recoverable plans should actually recover ({recovered} recovered)"
    );
}

#[test]
fn recovered_task_failures_prove_idempotent_reexecution() {
    // The task-fail plan at rate 0.4 over 12-task graphs: recovery means
    // tasks *were* re-executed and memory still matched the twin — the
    // oracle-level statement of RaCCD's retry idempotence (NC lines are
    // invalidated before the retry, so a re-run cannot observe its own
    // partial timing state).
    let plans = standard_plans();
    let task_fail = plans
        .iter()
        .find(|p| p.name == "task-fail")
        .copied()
        .unwrap();
    let seeds: Vec<u64> = (1..=6).collect();
    let rep = run_campaign(small_cfg(), GraphParams::small(0), &seeds, &[task_fail]);

    assert!(rep.silent_corruptions().is_empty());
    assert!(
        rep.recovered_task_retries() > 0,
        "campaign never exercised task re-execution"
    );
    for o in &rep.outcomes {
        if let Verdict::Recovered = o.verdict {
            let r = o.report.expect("fault report present");
            assert_eq!(r.tasks_completed, 12, "recovered runs retire every task");
        }
    }
}

#[test]
fn degradation_plan_falls_back_and_still_matches() {
    let plans = standard_plans();
    let storm = plans
        .iter()
        .find(|p| p.name == "storm-degrade")
        .copied()
        .unwrap();
    let seeds: Vec<u64> = (1..=4).collect();
    let rep = run_campaign(small_cfg(), GraphParams::small(0), &seeds, &[storm]);

    assert!(rep.silent_corruptions().is_empty());
    let degraded = rep
        .outcomes
        .iter()
        .filter(|o| o.report.is_some_and(|r| r.degraded))
        .count();
    assert!(
        degraded > 0,
        "sustained NCRT storms must trip the RaCCD→full-coherence fallback"
    );
}
