//! Adaptive Directory Reduction (§III-D).
//!
//! ADR dynamically resizes the directory by powering whole set-halves on
//! and off (Gated-Vdd). A per-bank occupancy monitor compares the resident
//! entry count against two thresholds of the *current* capacity:
//!
//! * occupancy ≥ `θ_inc` (paper: 80 %) → **double** the number of sets;
//! * occupancy ≤ `θ_dec` (paper: 20 %) → **halve** the number of sets.
//!
//! "We decide to halve or double the size of directory to simplify the
//! indexing function … using θinc = 80% · current size and θdec = 20% ·
//! current size provides a hysteresis loop with good reaction time with a
//! reduced number of reconfigurations."
//!
//! A reconfiguration rewrites the tag-index mapping and moves resident
//! entries, blocking the bank while it runs; the controller models that
//! with a per-entry move cost plus a fixed sequencing cost.

use crate::directory::{DirEviction, DirectoryBank};

/// ADR tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct AdrConfig {
    /// Grow when occupancy/capacity ≥ this (paper: 0.80).
    pub theta_inc: f64,
    /// Shrink when occupancy/capacity ≤ this (paper: 0.20).
    pub theta_dec: f64,
    /// Smallest entry count a bank may shrink to.
    pub min_entries: usize,
    /// Largest entry count (the design-time size; ADR never exceeds it).
    pub max_entries: usize,
    /// Cycles to move one resident entry during reconfiguration.
    pub move_cycles_per_entry: u64,
    /// Fixed cycles per reconfiguration (sequencing, index update).
    pub reconfig_fixed_cycles: u64,
}

impl AdrConfig {
    /// Paper defaults for a bank of `max_entries`, shrinking down to one
    /// 8-way set at minimum.
    pub fn paper_defaults(max_entries: usize, ways: usize) -> Self {
        AdrConfig {
            theta_inc: 0.80,
            theta_dec: 0.20,
            min_entries: ways,
            max_entries,
            move_cycles_per_entry: 2,
            reconfig_fixed_cycles: 100,
        }
    }
}

/// Which way a reconfiguration went.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResizeDirection {
    /// Capacity doubled.
    Grow,
    /// Capacity halved.
    Shrink,
}

/// Result of one ADR reconfiguration.
#[derive(Debug)]
pub struct ResizeEvent {
    /// Grow or shrink.
    pub direction: ResizeDirection,
    /// New capacity in entries.
    pub new_entries: usize,
    /// Cycles the bank was blocked.
    pub blocked_cycles: u64,
    /// Entries that no longer fit (inclusion victims for the caller).
    pub evicted: Vec<DirEviction>,
}

/// The ADR controller for one directory bank.
#[derive(Clone, Debug)]
pub struct Adr {
    config: AdrConfig,
    reconfigs: u64,
    blocked_cycles_total: u64,
}

impl Adr {
    /// Create a controller.
    pub fn new(config: AdrConfig) -> Self {
        assert!(config.theta_dec < config.theta_inc);
        assert!(config.min_entries <= config.max_entries);
        Adr {
            config,
            reconfigs: 0,
            blocked_cycles_total: 0,
        }
    }

    /// Inspect the bank after an allocation/deallocation and resize it if a
    /// threshold is crossed. Returns the event if a reconfiguration ran.
    pub fn maybe_resize(&mut self, bank: &mut DirectoryBank, now: u64) -> Option<ResizeEvent> {
        let cap = bank.capacity();
        let occ = bank.occupancy();
        let frac = occ as f64 / cap as f64;

        let (direction, new_entries) =
            if frac >= self.config.theta_inc && cap * 2 <= self.config.max_entries {
                (ResizeDirection::Grow, cap * 2)
            } else if frac <= self.config.theta_dec
                && cap / 2 >= self.config.min_entries
                && cap > self.config.min_entries
            {
                (ResizeDirection::Shrink, cap / 2)
            } else {
                return None;
            };

        let moved = occ as u64;
        let blocked_cycles =
            self.config.reconfig_fixed_cycles + moved * self.config.move_cycles_per_entry;
        let evicted = bank.resize(new_entries, now);
        self.reconfigs += 1;
        self.blocked_cycles_total += blocked_cycles;
        Some(ResizeEvent {
            direction,
            new_entries,
            blocked_cycles,
            evicted,
        })
    }

    /// Number of reconfigurations performed.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigs
    }

    /// Total cycles spent blocked in reconfigurations.
    pub fn blocked_cycles(&self) -> u64 {
        self.blocked_cycles_total
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdrConfig {
        &self.config
    }
}

impl raccd_snap::Snap for AdrConfig {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        self.theta_inc.save(w);
        self.theta_dec.save(w);
        self.min_entries.save(w);
        self.max_entries.save(w);
        w.u64(self.move_cycles_per_entry);
        w.u64(self.reconfig_fixed_cycles);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        Ok(AdrConfig {
            theta_inc: Snap::load(r)?,
            theta_dec: Snap::load(r)?,
            min_entries: Snap::load(r)?,
            max_entries: Snap::load(r)?,
            move_cycles_per_entry: r.u64()?,
            reconfig_fixed_cycles: r.u64()?,
        })
    }
}

impl raccd_snap::Snap for Adr {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        self.config.save(w);
        w.u64(self.reconfigs);
        w.u64(self.blocked_cycles_total);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        let config: AdrConfig = Snap::load(r)?;
        if config.theta_dec >= config.theta_inc || config.min_entries > config.max_entries {
            return Err(raccd_snap::SnapError::Invalid("ADR thresholds"));
        }
        Ok(Adr {
            config,
            reconfigs: r.u64()?,
            blocked_cycles_total: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::DirEntry;
    use raccd_mem::BlockAddr;

    fn setup(entries: usize) -> (DirectoryBank, Adr) {
        let bank = DirectoryBank::new(entries, 8, 0);
        let adr = Adr::new(AdrConfig::paper_defaults(entries, 8));
        (bank, adr)
    }

    #[test]
    fn shrinks_when_nearly_empty() {
        let (mut bank, mut adr) = setup(64);
        bank.allocate(BlockAddr(1), 0, DirEntry::uncached());
        // occupancy 1/64 ≤ 20 % → shrink to 32.
        let ev = adr.maybe_resize(&mut bank, 10).expect("should shrink");
        assert_eq!(ev.direction, ResizeDirection::Shrink);
        assert_eq!(bank.capacity(), 32);
        assert!(ev.evicted.is_empty());
    }

    #[test]
    fn repeated_shrink_reaches_minimum_and_stops() {
        let (mut bank, mut adr) = setup(64);
        let mut now = 0;
        while adr.maybe_resize(&mut bank, now).is_some() {
            now += 10;
        }
        assert_eq!(bank.capacity(), 8, "min = one 8-way set");
        assert_eq!(adr.reconfigurations(), 3); // 64→32→16→8
    }

    #[test]
    fn grows_when_nearly_full() {
        let (mut bank, mut adr) = setup(64);
        // Shrink to 8 first.
        while adr.maybe_resize(&mut bank, 0).is_some() {}
        assert_eq!(bank.capacity(), 8);
        // Fill ≥ 80 %: 7 of 8.
        for i in 0..7u64 {
            bank.allocate(BlockAddr(i), 1, DirEntry::uncached());
        }
        let ev = adr.maybe_resize(&mut bank, 2).expect("should grow");
        assert_eq!(ev.direction, ResizeDirection::Grow);
        assert_eq!(bank.capacity(), 16);
        assert!(ev.blocked_cycles >= 100);
    }

    #[test]
    fn never_exceeds_design_size() {
        let (mut bank, mut adr) = setup(16);
        for i in 0..16u64 {
            bank.allocate(BlockAddr(i), 0, DirEntry::uncached());
        }
        // occupancy 100 % but already at max → no resize.
        assert!(adr.maybe_resize(&mut bank, 1).is_none());
    }

    #[test]
    fn hysteresis_region_is_stable() {
        let (mut bank, mut adr) = setup(64);
        // 50 % occupancy: between θdec and θinc → no resize.
        for i in 0..32u64 {
            bank.allocate(BlockAddr(i), 0, DirEntry::uncached());
        }
        assert!(adr.maybe_resize(&mut bank, 1).is_none());
        assert_eq!(adr.reconfigurations(), 0);
    }

    #[test]
    fn blocked_cycles_accumulate() {
        let (mut bank, mut adr) = setup(64);
        adr.maybe_resize(&mut bank, 0);
        adr.maybe_resize(&mut bank, 1);
        assert_eq!(adr.blocked_cycles(), 200, "two empty-bank reconfigs");
    }
}
