//! The central ready queue.
//!
//! §II-C: "Ready tasks are stored in a ready queue from which the scheduler
//! distributes tasks among all threads for asynchronous execution." We
//! model the default Nanos++ central FIFO queue; this is the dynamic
//! scheduler whose task migration makes *temporarily private* data
//! important (§II-B) — consecutive tasks touching the same data routinely
//! land on different cores.

use crate::graph::TaskId;
use std::collections::VecDeque;

/// FIFO ready queue shared by all worker threads.
#[derive(Clone, Debug, Default)]
pub struct ReadyQueue {
    queue: VecDeque<TaskId>,
    pushed: u64,
    popped: u64,
}

impl ReadyQueue {
    /// Empty queue.
    pub fn new() -> Self {
        ReadyQueue::default()
    }

    /// Enqueue a task that became ready.
    pub fn push(&mut self, task: TaskId) {
        self.pushed += 1;
        self.queue.push_back(task);
    }

    /// Enqueue several tasks in order.
    pub fn extend(&mut self, tasks: impl IntoIterator<Item = TaskId>) {
        for t in tasks {
            self.push(t);
        }
    }

    /// The scheduling phase: hand the oldest ready task to a requesting
    /// thread.
    pub fn pop(&mut self) -> Option<TaskId> {
        let t = self.queue.pop_front();
        if t.is_some() {
            self.popped += 1;
        }
        t
    }

    /// Tasks currently ready.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no task is ready.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// (total pushed, total popped) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.pushed, self.popped)
    }
}

/// Per-core work-stealing deques: the locality-preserving alternative to
/// the central queue. The owning core pops LIFO from the back of its own
/// deque (hot data first); an idle core steals FIFO from the front of the
/// first non-empty victim in a deterministic scan order.
#[derive(Clone, Debug)]
pub struct StealQueues {
    deques: Vec<VecDeque<TaskId>>,
    steals: u64,
    local_pops: u64,
}

impl StealQueues {
    /// One deque per hardware context.
    pub fn new(contexts: usize) -> Self {
        StealQueues {
            deques: vec![VecDeque::new(); contexts],
            steals: 0,
            local_pops: 0,
        }
    }

    /// Enqueue a ready task on `ctx`'s deque (wake-ups push here).
    pub fn push(&mut self, ctx: usize, task: TaskId) {
        self.deques[ctx].push_back(task);
    }

    /// Pop for `ctx`: own deque LIFO first, else steal FIFO from the next
    /// non-empty victim (deterministic scan from `ctx + 1`).
    pub fn pop(&mut self, ctx: usize) -> Option<TaskId> {
        if let Some(t) = self.deques[ctx].pop_back() {
            self.local_pops += 1;
            return Some(t);
        }
        let n = self.deques.len();
        for d in 1..n {
            let victim = (ctx + d) % n;
            if let Some(t) = self.deques[victim].pop_front() {
                self.steals += 1;
                return Some(t);
            }
        }
        None
    }

    /// Ready tasks across all deques.
    pub fn len(&self) -> usize {
        self.deques.iter().map(|d| d.len()).sum()
    }

    /// Whether every deque is empty.
    pub fn is_empty(&self) -> bool {
        self.deques.iter().all(|d| d.is_empty())
    }

    /// (local pops, steals) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.local_pops, self.steals)
    }
}

impl raccd_snap::Snap for ReadyQueue {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        self.queue.save(w);
        w.u64(self.pushed);
        w.u64(self.popped);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        Ok(ReadyQueue {
            queue: Snap::load(r)?,
            pushed: r.u64()?,
            popped: r.u64()?,
        })
    }
}

impl raccd_snap::Snap for StealQueues {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        self.deques.save(w);
        w.u64(self.steals);
        w.u64(self.local_pops);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        let q = StealQueues {
            deques: Snap::load(r)?,
            steals: r.u64()?,
            local_pops: r.u64()?,
        };
        if q.deques.is_empty() {
            return Err(raccd_snap::SnapError::Invalid("steal queues empty"));
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = ReadyQueue::new();
        q.extend([3, 1, 4]);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn counters() {
        let mut q = ReadyQueue::new();
        q.push(0);
        q.push(1);
        let _ = q.pop();
        assert_eq!(q.stats(), (2, 1));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn steal_owner_pops_lifo() {
        let mut q = StealQueues::new(2);
        q.push(0, 10);
        q.push(0, 11);
        assert_eq!(q.pop(0), Some(11), "owner takes the hottest task");
        assert_eq!(q.pop(0), Some(10));
        assert_eq!(q.stats(), (2, 0));
    }

    #[test]
    fn steal_thief_takes_fifo_from_victim() {
        let mut q = StealQueues::new(3);
        q.push(0, 10);
        q.push(0, 11);
        assert_eq!(q.pop(1), Some(10), "thief takes the coldest task");
        assert_eq!(q.stats(), (0, 1));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn steal_scan_order_is_deterministic() {
        let mut q = StealQueues::new(4);
        q.push(2, 20);
        q.push(3, 30);
        // ctx 1 scans 2, 3, 0 → finds 20 first.
        assert_eq!(q.pop(1), Some(20));
        assert_eq!(q.pop(1), Some(30));
        assert_eq!(q.pop(1), None);
        assert!(q.is_empty());
    }
}
