//! Property tests of TDG construction: for arbitrary dependence patterns
//! the graph must be acyclic (every task eventually completes), respect
//! program order on conflicting accesses, and never lose tasks.

use proptest::prelude::*;
use raccd_mem::addr::VRange;
use raccd_mem::VAddr;
use raccd_runtime::{Dep, DepDir, TaskGraph};

#[derive(Clone, Debug)]
struct SpecDep {
    slot: u8,
    dir: u8, // 0 = in, 1 = out, 2 = inout
}

fn deps_strategy() -> impl Strategy<Value = Vec<SpecDep>> {
    proptest::collection::vec(
        (0u8..10, 0u8..3).prop_map(|(slot, dir)| SpecDep { slot, dir }),
        0..4,
    )
}

fn build(specs: &[Vec<SpecDep>]) -> TaskGraph {
    let mut g = TaskGraph::new();
    let slot = |i: u8| VRange::new(VAddr(0x10_0000 + i as u64 * 4096), 4096);
    for deps in specs {
        let d: Vec<Dep> = deps
            .iter()
            .map(|sd| Dep {
                range: slot(sd.slot),
                dir: match sd.dir {
                    0 => DepDir::In,
                    1 => DepDir::Out,
                    _ => DepDir::InOut,
                },
            })
            .collect();
        g.add_task("t", d, Box::new(|_| {}));
    }
    g
}

/// Drain the graph in topological order; returns completion order.
fn drain(g: &mut TaskGraph) -> Vec<usize> {
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = g
        .initially_ready()
        .into_iter()
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::new();
    while let Some(std::cmp::Reverse(t)) = ready.pop() {
        order.push(t);
        for n in g.complete(t) {
            ready.push(std::cmp::Reverse(n));
        }
    }
    order
}

proptest! {
    /// Every generated graph is acyclic and complete: all tasks drain.
    #[test]
    fn graphs_always_drain(specs in proptest::collection::vec(deps_strategy(), 1..40)) {
        let mut g = build(&specs);
        let n = g.len();
        let order = drain(&mut g);
        prop_assert_eq!(order.len(), n, "some task never became ready");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Writers to the same slot complete in program order (WAW respected),
    /// and no reader of a slot runs before the last program-order writer
    /// that precedes it (RAW respected).
    #[test]
    fn conflicting_accesses_respect_program_order(
        specs in proptest::collection::vec(deps_strategy(), 1..30),
    ) {
        let mut g = build(&specs);
        let order = drain(&mut g);
        let mut pos = vec![0usize; order.len()];
        for (p, &t) in order.iter().enumerate() {
            pos[t] = p;
        }
        for slot in 0u8..10 {
            let mut last_writer: Option<usize> = None;
            for (tid, deps) in specs.iter().enumerate() {
                let writes = deps.iter().any(|d| d.slot == slot && d.dir != 0);
                let reads = deps.iter().any(|d| d.slot == slot && d.dir != 1);
                if let Some(w) = last_writer {
                    if (writes || reads) && tid != w {
                        prop_assert!(
                            pos[w] < pos[tid],
                            "task {tid} touched slot {slot} before its writer {w}"
                        );
                    }
                }
                if writes {
                    last_writer = Some(tid);
                }
            }
        }
    }

    /// Edge count is stable under re-construction (determinism) and zero
    /// for fully-disjoint tasks.
    #[test]
    fn construction_is_deterministic(specs in proptest::collection::vec(deps_strategy(), 1..25)) {
        let a = build(&specs);
        let b = build(&specs);
        prop_assert_eq!(a.edges(), b.edges());
        prop_assert_eq!(a.initially_ready(), b.initially_ready());
    }

    /// Tasks touching pairwise-disjoint slots never gain edges.
    #[test]
    fn disjoint_tasks_are_independent(n in 1usize..10) {
        let specs: Vec<Vec<SpecDep>> = (0..n)
            .map(|i| vec![SpecDep { slot: i as u8, dir: 2 }])
            .collect();
        let g = build(&specs);
        prop_assert_eq!(g.edges(), 0);
        prop_assert_eq!(g.initially_ready().len(), n);
    }
}
