//! Simulated page table and physical frame allocator.
//!
//! The paper runs on full-system Linux and notes (§III-C2) that "the
//! unmodified Linux kernel allocates the contiguous virtual memory pages of
//! the data sets of the benchmarks to contiguous physical pages". The
//! default [`FrameAllocPolicy::Contiguous`] reproduces that behaviour;
//! [`FrameAllocPolicy::Permuted`] scatters frames pseudo-randomly so tests
//! and benches can exercise the NCRT region-collapsing path of Figure 5.

use crate::addr::{PAddr, PageNum, VAddr, PAGE_SHIFT, PAGE_SIZE};
use crate::rng::SplitMix64;
use std::collections::HashMap;

/// How virtual pages are assigned physical frames on first touch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameAllocPolicy {
    /// Contiguous virtual pages get contiguous physical frames (the case the
    /// paper observes under Linux).
    Contiguous,
    /// Frames are drawn from a pseudo-random permutation; contiguous virtual
    /// pages usually map to non-contiguous frames, forcing the NCRT to hold
    /// multiple collapsed regions per task dependence.
    Permuted,
}

/// A flat simulated page table: virtual page number → physical frame number.
///
/// Translation is demand-mapped: the first lookup of an unmapped page
/// allocates a frame according to the policy (modelling the OS page-fault
/// handler). A page-walk latency is *not* charged here — the timing model in
/// `raccd-sim` charges it on TLB misses.
#[derive(Clone, Debug)]
pub struct PageTable {
    map: HashMap<u64, u64>,
    policy: FrameAllocPolicy,
    next_frame: u64,
    rng: SplitMix64,
    /// Base physical frame number; keeps physical addresses away from 0 so
    /// address-arithmetic bugs surface as obvious failures.
    base_frame: u64,
}

impl PageTable {
    /// Create a page table with the given allocation policy.
    pub fn new(policy: FrameAllocPolicy) -> Self {
        PageTable {
            map: HashMap::new(),
            policy,
            next_frame: 0,
            rng: SplitMix64::new(0xD15E_A5E0_0FAC_CDD0),
            base_frame: 0x100,
        }
    }

    /// Translate a virtual page, demand-mapping it if necessary.
    pub fn translate_page(&mut self, vpage: PageNum) -> PageNum {
        if let Some(&f) = self.map.get(&vpage.0) {
            return PageNum(f);
        }
        let frame = self.alloc_frame(vpage);
        self.map.insert(vpage.0, frame);
        PageNum(frame)
    }

    /// Translate a full virtual address to a physical address.
    pub fn translate(&mut self, vaddr: VAddr) -> PAddr {
        let frame = self.translate_page(vaddr.page());
        PAddr((frame.0 << PAGE_SHIFT) | (vaddr.0 & (PAGE_SIZE - 1)))
    }

    /// Look up a mapping without creating it.
    pub fn lookup_page(&self, vpage: PageNum) -> Option<PageNum> {
        self.map.get(&vpage.0).map(|&f| PageNum(f))
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    fn alloc_frame(&mut self, vpage: PageNum) -> u64 {
        match self.policy {
            FrameAllocPolicy::Contiguous => {
                // First-touch order but stable under re-touch: derive from a
                // monotonically growing frame counter, anchored so that
                // consecutive vpages touched consecutively get consecutive
                // frames (the common case for our bump-allocated heaps).
                let f = self.base_frame + self.next_frame;
                self.next_frame += 1;
                let _ = vpage;
                f
            }
            FrameAllocPolicy::Permuted => {
                // Pseudo-random frame with linear probing against reuse.
                // The frame space is kept sparse (48-bit worth of frames is
                // ample) so collisions are vanishingly rare; probe anyway.
                loop {
                    let candidate = self.base_frame + self.rng.next_below(1 << 28);
                    if !self.map.values().any(|&f| f == candidate) {
                        return candidate;
                    }
                }
            }
        }
    }
}

impl raccd_snap::Snap for FrameAllocPolicy {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        w.u8(match self {
            FrameAllocPolicy::Contiguous => 0,
            FrameAllocPolicy::Permuted => 1,
        });
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        match r.u8()? {
            0 => Ok(FrameAllocPolicy::Contiguous),
            1 => Ok(FrameAllocPolicy::Permuted),
            _ => Err(raccd_snap::SnapError::Invalid("frame alloc policy tag")),
        }
    }
}

impl raccd_snap::Snap for PageTable {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        self.map.save(w);
        self.policy.save(w);
        w.u64(self.next_frame);
        self.rng.save(w);
        w.u64(self.base_frame);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        Ok(PageTable {
            map: Snap::load(r)?,
            policy: Snap::load(r)?,
            next_frame: r.u64()?,
            rng: Snap::load(r)?,
            base_frame: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VRange;

    #[test]
    fn contiguous_policy_maps_sequential_pages_contiguously() {
        let mut pt = PageTable::new(FrameAllocPolicy::Contiguous);
        let f0 = pt.translate_page(PageNum(0xaa));
        let f1 = pt.translate_page(PageNum(0xab));
        let f2 = pt.translate_page(PageNum(0xac));
        assert_eq!(f1.0, f0.0 + 1);
        assert_eq!(f2.0, f1.0 + 1);
    }

    #[test]
    fn translation_is_stable() {
        let mut pt = PageTable::new(FrameAllocPolicy::Contiguous);
        let a = pt.translate(VAddr(0x12345));
        let b = pt.translate(VAddr(0x12345));
        assert_eq!(a, b);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn offsets_preserved_through_translation() {
        let mut pt = PageTable::new(FrameAllocPolicy::Contiguous);
        let p = pt.translate(VAddr(0x3_0123));
        assert_eq!(p.0 & (PAGE_SIZE - 1), 0x123);
    }

    #[test]
    fn permuted_policy_scatters_frames() {
        let mut pt = PageTable::new(FrameAllocPolicy::Permuted);
        let frames: Vec<u64> = (0..16).map(|i| pt.translate_page(PageNum(i)).0).collect();
        // At least one adjacent pair must be non-contiguous (overwhelmingly
        // all of them are).
        assert!(frames.windows(2).any(|w| w[1] != w[0] + 1));
        // And all frames distinct.
        let mut sorted = frames.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), frames.len());
    }

    #[test]
    fn range_pages_translate_consistently() {
        let mut pt = PageTable::new(FrameAllocPolicy::Contiguous);
        let r = VRange::new(VAddr(0xaa044), 0xad088 - 0xaa044);
        let frames: Vec<u64> = r.pages().map(|p| pt.translate_page(p).0).collect();
        assert_eq!(frames.len(), 4);
        assert!(frames.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn lookup_does_not_map() {
        let pt = PageTable::new(FrameAllocPolicy::Contiguous);
        assert!(pt.lookup_page(PageNum(7)).is_none());
        assert_eq!(pt.mapped_pages(), 0);
    }
}
