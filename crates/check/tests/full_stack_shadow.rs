//! Full-stack runs with the shadow checker attached: real benchmarks,
//! real runtime (registration, invalidation, scheduling), every coherence
//! mode — the oracle must stay silent end to end.
//!
//! The fail-fast checker inside the machine panics (with a recent-event
//! dump) on the first invariant violation, so a passing test here means
//! zero violations across every load/store of the whole program, plus a
//! clean final mirror-versus-machine audit from `Machine::finalize`.

use raccd_core::driver::run_program_with;
use raccd_core::{CoherenceMode, Experiment};
use raccd_runtime::Workload;
use raccd_sim::MachineConfig;
use raccd_workloads::{cholesky::Cholesky, histo::Histo, jacobi::Jacobi, Scale};

fn shadow_cfg() -> MachineConfig {
    MachineConfig::scaled().with_shadow_check(true)
}

fn run_checked(w: &dyn Workload, cfg: MachineConfig, mode: CoherenceMode) {
    let out = run_program_with(cfg, mode, w.build(), None);
    let report = out
        .check
        .expect("shadow checker must have been attached and produce a report");
    assert!(
        report.violations.is_empty(),
        "{} under {mode}: {:?}",
        w.name(),
        report.violations
    );
    assert!(report.stats.reads_checked > 0, "oracle saw no reads");
    assert!(report.stats.audits > 0, "final audit did not run");
    w.verify(&out.mem)
        .unwrap_or_else(|e| panic!("{} under {mode} failed verify: {e}", w.name()));
}

/// Jacobi under all four coherence modes with the oracle attached.
#[test]
fn jacobi_all_modes_shadow_clean() {
    let w = Jacobi {
        n: 24,
        iters: 2,
        blocks: 4,
        ..Jacobi::new(Scale::Test)
    };
    for mode in CoherenceMode::ALL {
        run_checked(&w, shadow_cfg(), mode);
    }
}

/// Cholesky (the richest dependence structure) under RaCCD and baseline.
#[test]
fn cholesky_shadow_clean() {
    let w = Cholesky {
        tiles: 3,
        t: 6,
        seed: 5,
    };
    for mode in [CoherenceMode::Raccd, CoherenceMode::FullCoh] {
        run_checked(&w, shadow_cfg(), mode);
    }
}

/// A reduction-heavy workload on a reduced, ADR-managed directory — the
/// paper's headline configuration — with the oracle watching.
#[test]
fn histo_reduced_directory_adr_shadow_clean() {
    let w = Histo::new(Scale::Test);
    let cfg = shadow_cfg().with_dir_ratio(16).with_adr(true);
    run_checked(&w, cfg, CoherenceMode::Raccd);
}

/// The `Experiment` front door honours `shadow_check` too (the checker
/// rides inside the machine; a violation would panic the run).
#[test]
fn experiment_api_with_shadow_checker() {
    let w = Jacobi {
        n: 16,
        iters: 1,
        blocks: 2,
        ..Jacobi::new(Scale::Test)
    };
    let r = Experiment::new(shadow_cfg(), CoherenceMode::Raccd).run(&w);
    assert!(r.verified, "{:?}", r.verify_error);
}
