//! End-to-end tests of the §II-B TLB-based classifier extension: it must
//! preserve semantics, approach RaCCD's classification accuracy on
//! migration-heavy workloads, and pay the hardware costs RaCCD avoids.

use raccd::core::{CoherenceMode, Experiment};
use raccd::sim::MachineConfig;
use raccd::workloads::{all_benchmarks, jacobi::Jacobi, Scale};

#[test]
fn tlb_mode_verifies_on_all_benchmarks() {
    for w in all_benchmarks(Scale::Test) {
        let run = Experiment::new(MachineConfig::scaled(), CoherenceMode::TlbClass).run(w.as_ref());
        assert!(run.verified, "{}: {:?}", w.name(), run.verify_error);
    }
}

fn pressured_jacobi() -> Jacobi {
    Jacobi {
        n: 256,
        iters: 2,
        blocks: 16,
        ..Jacobi::new(Scale::Test)
    }
}

#[test]
fn tlb_recovers_temporarily_private_data_pt_cannot() {
    // On a migration-heavy stencil, the TLB classifier's recovery after
    // entry eviction/decay beats PT's irreversible classification.
    let w = pressured_jacobi();
    let cfg = MachineConfig::scaled();
    let pt = Experiment::new(cfg, CoherenceMode::PageTable).run(&w);
    let tlb = Experiment::new(cfg, CoherenceMode::TlbClass).run(&w);
    let raccd = Experiment::new(cfg, CoherenceMode::Raccd).run(&w);
    let (p, t, r) = (
        pt.census.noncoherent_pct(),
        tlb.census.noncoherent_pct(),
        raccd.census.noncoherent_pct(),
    );
    assert!(t > p, "TLB {t:.1}% must beat PT {p:.1}%");
    assert!(r >= t, "RaCCD {r:.1}% is the accuracy ceiling ({t:.1}%)");
}

#[test]
fn tlb_reduces_directory_pressure_like_raccd() {
    let w = pressured_jacobi();
    let cfg = MachineConfig::scaled();
    let full = Experiment::new(cfg, CoherenceMode::FullCoh).run(&w);
    let tlb = Experiment::new(cfg, CoherenceMode::TlbClass).run(&w);
    assert!(
        (tlb.stats.dir_accesses as f64) < 0.5 * full.stats.dir_accesses as f64,
        "TLB {} vs FullCoh {}",
        tlb.stats.dir_accesses,
        full.stats.dir_accesses
    );
    assert!(tlb.stats.dir_avg_occupancy < full.stats.dir_avg_occupancy);
}

#[test]
fn tlb_mode_is_deterministic() {
    let w = pressured_jacobi();
    let cfg = MachineConfig::scaled();
    let a = Experiment::new(cfg, CoherenceMode::TlbClass).run(&w);
    let b = Experiment::new(cfg, CoherenceMode::TlbClass).run(&w);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.census, b.census);
}

#[test]
fn tlb_pays_flush_costs_raccd_avoids_at_small_tlb() {
    // Shrink the TLB so inclusivity flushes fire constantly: the §II-B
    // "costly TLB invalidations" overhead appears as page-flush work that
    // RaCCD does not have.
    let mut cfg = MachineConfig::scaled();
    cfg.tlb_entries = 16;
    let w = pressured_jacobi();
    let tlb = Experiment::new(cfg, CoherenceMode::TlbClass).run(&w);
    assert!(tlb.verified);
    assert!(
        tlb.stats.pt_flush_lines > 0,
        "TLB–L1 inclusivity must flush lines on TLB evictions"
    );
}
