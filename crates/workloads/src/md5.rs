//! **MD5** — "cryptographically hashes random input buffers" (Table II:
//! 128 buffers of 512 KB). Streaming reads with almost no reuse: LLC
//! accesses are dominated by compulsory misses, so neither directory
//! capacity nor coherence deactivation moves the needle much (§V-A3).
//!
//! The digest implementation is a from-scratch RFC 1321 MD5, validated
//! against the RFC's official test vectors.

use crate::scale::Scale;
use raccd_mem::addr::VRange;
use raccd_mem::{SimMemory, SplitMix64};
use raccd_runtime::{Dep, Program, ProgramBuilder, Workload};

/// Per-round shift amounts (RFC 1321).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants `K[i] = floor(2^32 · |sin(i+1)|)` (RFC 1321).
fn k(i: usize) -> u32 {
    ((i as f64 + 1.0).sin().abs() * 4294967296.0) as u32
}

/// MD5 of a byte slice (RFC 1321).
#[allow(clippy::needless_range_loop)] // index i feeds S[i], K(i) and the schedule
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut a0: u32 = 0x67452301;
    let mut b0: u32 = 0xefcdab89;
    let mut c0: u32 = 0x98badcfe;
    let mut d0: u32 = 0x10325476;

    // Padded message: data ‖ 0x80 ‖ zeros ‖ bit-length (LE, 64-bit).
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(chunk[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(k(i))
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// The MD5 benchmark: one task per buffer.
pub struct Md5Bench {
    /// Buffers to hash.
    pub buffers: u64,
    /// Bytes per buffer.
    pub buf_len: u64,
    /// RNG seed for deterministic input data.
    pub seed: u64,
}

impl Md5Bench {
    /// Configure for a scale (Paper: 128 buffers of 512 KB).
    pub fn new(scale: Scale) -> Self {
        Md5Bench {
            buffers: scale.pick(8, 64, 128),
            buf_len: scale.pick(4 * 1024, 64 * 1024, 512 * 1024),
            seed: 0x3D5,
        }
    }

    fn buffer(&self, i: u64) -> Vec<u8> {
        let mut rng = SplitMix64::new(self.seed.wrapping_add(i * 7919));
        (0..self.buf_len).map(|_| rng.next_u32() as u8).collect()
    }
}

impl Workload for Md5Bench {
    fn name(&self) -> &str {
        "MD5"
    }

    fn problem(&self) -> String {
        format!(
            "{} buffers of {}KB to hash",
            self.buffers,
            self.buf_len / 1024
        )
    }

    fn build(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let data = b.alloc("buffers", self.buffers * self.buf_len);
        // One cache line per digest: 16 digest bytes padded to 64 so
        // independent tasks never false-share a block (and the TDG's
        // block-granularity region map sees them as disjoint).
        let digests = b.alloc("digests", self.buffers * 64);
        for i in 0..self.buffers {
            b.mem()
                .write_bytes(data.start.offset(i * self.buf_len), &self.buffer(i));
        }

        let buf_len = self.buf_len;
        for i in 0..self.buffers {
            let buf = VRange::new(data.start.offset(i * buf_len), buf_len);
            let dig = VRange::new(digests.start.offset(i * 64), 16);
            b.task("md5", vec![Dep::input(buf), Dep::output(dig)], move |ctx| {
                // Stream the buffer in (traced word reads), hash, write
                // the digest out.
                let mut bytes = Vec::with_capacity(buf_len as usize);
                let words = buf_len / 8;
                for w in 0..words {
                    let v = ctx.read_u64(buf.start.offset(w * 8));
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                for o in words * 8..buf_len {
                    bytes.push(ctx.read_u8(buf.start.offset(o)));
                }
                let d = md5(&bytes);
                for (j, chunk) in d.chunks_exact(4).enumerate() {
                    ctx.write_u32(
                        dig.start.offset(j as u64 * 4),
                        u32::from_le_bytes(chunk.try_into().unwrap()),
                    );
                }
            });
        }
        b.finish()
    }

    fn verify(&self, mem: &SimMemory) -> Result<(), String> {
        let base = mem.allocations()[1].1.start;
        for i in 0..self.buffers {
            let want = md5(&self.buffer(i));
            let got = mem.bytes(base.offset(i * 64), 16);
            if got != want {
                return Err(format!("buffer {i}: digest mismatch"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: [u8; 16]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc1321_test_vectors() {
        assert_eq!(hex(md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex(md5(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex(md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            hex(md5(b"message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            hex(md5(b"abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            hex(md5(
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
            )),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            hex(md5(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            )),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 56-byte padding boundary and block multiples.
        for len in [55usize, 56, 57, 63, 64, 65, 127, 128] {
            let data = vec![0xABu8; len];
            let d = md5(&data);
            // Self-consistency: hashing twice must agree, and differ from a
            // one-byte change.
            assert_eq!(d, md5(&data));
            let mut data2 = data.clone();
            data2[len / 2] ^= 1;
            assert_ne!(d, md5(&data2));
        }
    }

    #[test]
    fn functional_run_matches_digests() {
        let w = Md5Bench::new(Scale::Test);
        let mut p = w.build();
        p.run_functional();
        w.verify(&p.mem).expect("digests match");
    }

    #[test]
    fn all_tasks_independent_streaming() {
        let w = Md5Bench::new(Scale::Test);
        let p = w.build();
        assert_eq!(p.graph.len() as u64, w.buffers);
        assert_eq!(p.graph.edges(), 0, "buffers are independent");
    }
}
