//! RaCCD-on vs RaCCD-off differential testing over random task graphs.
//!
//! The acceptance bar: ≥ 100 seeded random programs whose final memory
//! images and per-task read values are bit-identical between
//! [`CoherenceMode::Raccd`](raccd_core::CoherenceMode) and the
//! fully-coherent baseline, with a clean shadow-checker report on both
//! sides of every run.

use raccd_check::{run_differential, GraphParams};
use raccd_sim::MachineConfig;

fn quad_core() -> MachineConfig {
    let mut cfg = MachineConfig::scaled();
    cfg.ncores = 4;
    cfg.mesh_k = 2;
    cfg
}

/// 100 seeds × (RaCCD, FullCoh): identical memory, identical reads, clean
/// checkers.
#[test]
fn hundred_random_graphs_raccd_equals_fullcoh() {
    let mut failures = String::new();
    for seed in 0..100 {
        let out = run_differential(quad_core(), GraphParams::small(seed));
        if !out.is_clean() {
            failures.push_str(&out.describe());
        }
    }
    assert!(failures.is_empty(), "{failures}");
}

/// Wider, deeper graphs with more cross-task sharing, on a small LLC that
/// forces eviction traffic mid-run.
#[test]
fn stressed_graphs_stay_differentially_clean() {
    let mut cfg = quad_core();
    cfg.llc_entries_per_bank = 64;
    for seed in [7, 1234, 0xDEAD] {
        let params = GraphParams {
            seed,
            layers: 4,
            width: 6,
            fan_in: 3,
            words: 48,
        };
        let out = run_differential(cfg, params);
        assert!(out.is_clean(), "{}", out.describe());
        assert_eq!(out.tasks, 24);
    }
}

/// Write-through private caches change every store's protocol path but
/// must not change a single architectural value.
#[test]
fn write_through_differential_clean() {
    let cfg = quad_core().with_write_through(true);
    for seed in 100..110 {
        let out = run_differential(cfg, GraphParams::small(seed));
        assert!(out.is_clean(), "{}", out.describe());
    }
}

/// ADR resizing under RaCCD (shrunken directories are RaCCD's payoff —
/// §III-D) must also preserve the differential.
#[test]
fn adr_differential_clean() {
    let cfg = quad_core().with_dir_ratio(8).with_adr(true);
    for seed in 200..210 {
        let out = run_differential(cfg, GraphParams::small(seed));
        assert!(out.is_clean(), "{}", out.describe());
    }
}
