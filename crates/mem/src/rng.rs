//! Deterministic pseudo-random number generation for workload data.
//!
//! Benchmarks must produce bit-identical inputs across runs and platforms so
//! that (a) simulations are reproducible and (b) functional results can be
//! checked against host-side reference implementations. A tiny SplitMix64
//! generator keeps that guarantee independent of external crate version
//! churn (see DESIGN.md §5).

/// SplitMix64 generator (Steele, Lea & Flood; public-domain reference
/// constants). Passes BigCrush when used as a 64-bit stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa bits of a u32, scaled.
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform double in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction; the slight modulo bias is
    /// irrelevant for workload generation.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl raccd_snap::Snap for SplitMix64 {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        w.u64(self.state);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        Ok(SplitMix64 { state: r.u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 reference implementation.
        let mut rng = SplitMix64::new(1234567);
        let expected = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            let f = rng.next_f32();
            assert!((0.0..1.0).contains(&f));
            let d = rng.next_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(99);
        let mut v: Vec<u32> = (0..257).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..257).collect::<Vec<_>>());
        // And it actually moved something.
        assert_ne!(v, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
