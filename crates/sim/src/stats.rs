//! Statistics for every metric the paper's evaluation reports.

/// Counters accumulated over one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stats {
    /// Execution cycles (Figure 6: "normalised cycles").
    pub cycles: u64,

    // --- L1 ---
    /// L1 data cache hits.
    pub l1_hits: u64,
    /// L1 data cache misses.
    pub l1_misses: u64,
    /// Dirty L1 lines written back to the LLC (coherent PutM + NC
    /// write-backs). §V-A1 tracks this for the Kmeans discussion.
    pub l1_writebacks: u64,
    /// Store-driven LLC updates under write-through private caches
    /// (§III-C3's write-through variant; 0 under write-back).
    pub write_throughs: u64,

    // --- TLB ---
    /// DTLB hits.
    pub tlb_hits: u64,
    /// DTLB misses (page walks).
    pub tlb_misses: u64,

    // --- Directory (Figure 7a / 8) ---
    /// Directory bank accesses.
    pub dir_accesses: u64,
    /// Directory entry allocations.
    pub dir_allocations: u64,
    /// Directory entries evicted for capacity (inclusion victims).
    pub dir_evictions: u64,
    /// Time-weighted average directory occupancy fraction over the whole
    /// run: ∫occupancy dt / ∫capacity dt, accumulated by the per-bank
    /// occupancy integrals on every directory state change (Figure 8).
    pub dir_avg_occupancy: f64,
    /// Access histogram by directory capacity `(entries_per_bank, count)` —
    /// feeds the size-dependent energy model (Figures 7d, 10).
    pub dir_access_hist: Vec<(u64, u64)>,
    /// ∫ powered directory capacity dt (entry·cycles), for leakage.
    pub dir_capacity_integral: u128,
    /// ADR reconfigurations performed (Figure 9 discussion: "low number of
    /// reconfigurations").
    pub adr_reconfigs: u64,
    /// Cycles directory banks spent blocked in ADR reconfigurations.
    pub adr_blocked_cycles: u64,

    // --- LLC (Figure 7b) ---
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// LLC lines invalidated because their directory entry was evicted
    /// (the Directory→LLC inclusivity effect of §V-A3).
    pub llc_inclusion_invalidations: u64,

    // --- Coherence actions ---
    /// Invalidation messages sent to private caches.
    pub invalidations_sent: u64,
    /// Owner-forwarded requests (dirty data supplied by a peer L1).
    pub owner_forwards: u64,
    /// L1 fills performed with the NC bit set.
    pub nc_fills: u64,
    /// L1 fills performed coherently.
    pub coherent_fills: u64,

    /// Cycles requests spent queued behind busy LLC/directory banks
    /// (only non-zero with `MachineConfig::bank_contention`).
    pub bank_wait_cycles: u64,

    // --- NoC (Figure 7c) ---
    /// Total flit·hops injected into the mesh.
    pub noc_traffic: u64,
    /// Total flits injected.
    pub noc_flits: u64,

    // --- Memory ---
    /// Main-memory fetches.
    pub mem_reads: u64,
    /// Main-memory write-backs.
    pub mem_writes: u64,

    // --- RaCCD / PT mechanism costs ---
    /// Cycles spent in `raccd_register` (iterative TLB translation).
    pub register_cycles: u64,
    /// Cycles spent in `raccd_invalidate` cache walks + flush write-backs.
    pub invalidate_cycles: u64,
    /// NC lines flushed by `raccd_invalidate`.
    pub nc_lines_flushed: u64,
    /// NCRT registrations that were dropped because the table was full.
    pub ncrt_overflows: u64,
    /// PT baseline: pages that transitioned private→shared.
    pub pt_shared_transitions: u64,
    /// PT baseline: L1 lines flushed by private→shared transitions.
    pub pt_flush_lines: u64,

    // --- Runtime ---
    /// Tasks executed.
    pub tasks_executed: u64,
    /// Memory references replayed through the timing model.
    pub refs_processed: u64,
    /// Cycles hardware contexts spent non-idle (scheduling, registering,
    /// executing, invalidating, waking) summed over contexts.
    pub busy_cycles: u64,
    /// Hardware contexts the run used (cores × SMT ways).
    pub contexts: u64,
    /// Tasks that executed on a different core than the task that woke
    /// them (dynamic-scheduler migration — what makes data *temporarily
    /// private*, §II-B).
    pub task_migrations: u64,
    /// Migrations that forced an NCRT hand-off under RaCCD: the task's
    /// regions re-registered on a core other than its waker's (the
    /// re-registration churn a migratory scheduler costs RaCCD).
    pub ncrt_migrations: u64,
    /// Quantum preemptions (SchedKind::Quantum): tasks descheduled at a
    /// batch boundary after exhausting their cycle quantum.
    pub preemptions: u64,
    /// Tasks pushed into the ready structure (unified across policies).
    pub sched_pushed: u64,
    /// Tasks popped out of the ready structure (unified across policies).
    pub sched_popped: u64,
    /// Pops served from the popping context's own queue (central
    /// policies count every pop here).
    pub sched_local_pops: u64,
    /// Pops served by raiding another context's queue.
    pub sched_steals: u64,

    // --- Fault plane / resilience (all zero without an attached plane) ---
    /// Faults injected across every site.
    pub faults_injected: u64,
    /// Message retransmissions (drop timeouts + corrupt NACK retries).
    pub msg_retries: u64,
    /// NACKs returned by the checksum model for corrupted payloads.
    pub msg_nacks: u64,
    /// Times the message retry budget ran out (run flagged fatal).
    pub retry_budget_exhausted: u64,
    /// Directory entries lost to injected upsets (recovered via the
    /// inclusion-eviction path).
    pub dir_entries_lost: u64,
    /// Extra latency cycles charged by injected delays, timeouts and
    /// backoff waits.
    pub fault_delay_cycles: u64,
    /// Malformed protocol transitions recovered via `ProtocolError`
    /// handling instead of aborting.
    pub protocol_recoveries: u64,
    /// Task re-executions after injected mid-task failures.
    pub task_retries: u64,
    /// Tasks delayed by injected straggle at dispatch.
    pub task_straggles: u64,
    /// Progress-watchdog firings (hung-run detections).
    pub watchdog_fires: u64,
    /// RaCCD → full-coherence degradations under sustained fault pressure.
    pub mode_downgrades: u64,
}

impl Stats {
    /// LLC hit ratio (Figure 7b). 0 when the LLC was never accessed.
    pub fn llc_hit_ratio(&self) -> f64 {
        let total = self.llc_hits + self.llc_misses;
        if total == 0 {
            0.0
        } else {
            self.llc_hits as f64 / total as f64
        }
    }

    /// L1 hit ratio.
    pub fn l1_hit_ratio(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Average hardware-context utilisation: busy cycles over
    /// `contexts × total cycles`. A pipelined workload (Gauss) sits far
    /// below an embarrassingly parallel one (Jacobi's first sweep).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 || self.contexts == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / (self.cycles * self.contexts) as f64
        }
    }

    /// Fraction of L1 fills that were non-coherent.
    pub fn nc_fill_fraction(&self) -> f64 {
        let total = self.nc_fills + self.coherent_fills;
        if total == 0 {
            0.0
        } else {
            self.nc_fills as f64 / total as f64
        }
    }

    /// Accumulate another run's counters into this one (multi-run
    /// aggregation in `bench`, shard merging in tests).
    ///
    /// Counters, cycle totals and integrals add. `dir_avg_occupancy` is
    /// recombined weighted by each side's capacity integral, so the result
    /// is still the time-weighted mean over the union of both runs (cycle
    /// totals are the fallback weight when integrals are absent).
    /// `dir_access_hist` merges by capacity key. `contexts` keeps the max:
    /// merged runs describe the same machine, not a bigger one.
    pub fn merge(&mut self, other: &Stats) {
        // Exhaustive destructure: adding a Stats field without deciding
        // its merge rule becomes a compile error here.
        let Stats {
            cycles,
            l1_hits,
            l1_misses,
            l1_writebacks,
            write_throughs,
            tlb_hits,
            tlb_misses,
            dir_accesses,
            dir_allocations,
            dir_evictions,
            dir_avg_occupancy,
            dir_access_hist: ref other_hist,
            dir_capacity_integral,
            adr_reconfigs,
            adr_blocked_cycles,
            llc_hits,
            llc_misses,
            llc_inclusion_invalidations,
            invalidations_sent,
            owner_forwards,
            nc_fills,
            coherent_fills,
            bank_wait_cycles,
            noc_traffic,
            noc_flits,
            mem_reads,
            mem_writes,
            register_cycles,
            invalidate_cycles,
            nc_lines_flushed,
            ncrt_overflows,
            pt_shared_transitions,
            pt_flush_lines,
            tasks_executed,
            refs_processed,
            busy_cycles,
            contexts,
            task_migrations,
            ncrt_migrations,
            preemptions,
            sched_pushed,
            sched_popped,
            sched_local_pops,
            sched_steals,
            faults_injected,
            msg_retries,
            msg_nacks,
            retry_budget_exhausted,
            dir_entries_lost,
            fault_delay_cycles,
            protocol_recoveries,
            task_retries,
            task_straggles,
            watchdog_fires,
            mode_downgrades,
        } = *other;

        let (wa, wb) = (self.dir_capacity_integral, dir_capacity_integral);
        self.dir_avg_occupancy = if wa + wb > 0 {
            (self.dir_avg_occupancy * wa as f64 + dir_avg_occupancy * wb as f64) / (wa + wb) as f64
        } else if self.cycles + cycles > 0 {
            (self.dir_avg_occupancy * self.cycles as f64 + dir_avg_occupancy * cycles as f64)
                / (self.cycles + cycles) as f64
        } else {
            (self.dir_avg_occupancy + dir_avg_occupancy) / 2.0
        };
        for &(cap, count) in other_hist {
            match self.dir_access_hist.iter_mut().find(|e| e.0 == cap) {
                Some(e) => e.1 += count,
                None => self.dir_access_hist.push((cap, count)),
            }
        }
        self.dir_access_hist.sort_unstable_by_key(|e| e.0);

        self.cycles += cycles;
        self.l1_hits += l1_hits;
        self.l1_misses += l1_misses;
        self.l1_writebacks += l1_writebacks;
        self.write_throughs += write_throughs;
        self.tlb_hits += tlb_hits;
        self.tlb_misses += tlb_misses;
        self.dir_accesses += dir_accesses;
        self.dir_allocations += dir_allocations;
        self.dir_evictions += dir_evictions;
        self.dir_capacity_integral += dir_capacity_integral;
        self.adr_reconfigs += adr_reconfigs;
        self.adr_blocked_cycles += adr_blocked_cycles;
        self.llc_hits += llc_hits;
        self.llc_misses += llc_misses;
        self.llc_inclusion_invalidations += llc_inclusion_invalidations;
        self.invalidations_sent += invalidations_sent;
        self.owner_forwards += owner_forwards;
        self.nc_fills += nc_fills;
        self.coherent_fills += coherent_fills;
        self.bank_wait_cycles += bank_wait_cycles;
        self.noc_traffic += noc_traffic;
        self.noc_flits += noc_flits;
        self.mem_reads += mem_reads;
        self.mem_writes += mem_writes;
        self.register_cycles += register_cycles;
        self.invalidate_cycles += invalidate_cycles;
        self.nc_lines_flushed += nc_lines_flushed;
        self.ncrt_overflows += ncrt_overflows;
        self.pt_shared_transitions += pt_shared_transitions;
        self.pt_flush_lines += pt_flush_lines;
        self.tasks_executed += tasks_executed;
        self.refs_processed += refs_processed;
        self.busy_cycles += busy_cycles;
        self.contexts = self.contexts.max(contexts);
        self.task_migrations += task_migrations;
        self.ncrt_migrations += ncrt_migrations;
        self.preemptions += preemptions;
        self.sched_pushed += sched_pushed;
        self.sched_popped += sched_popped;
        self.sched_local_pops += sched_local_pops;
        self.sched_steals += sched_steals;
        self.faults_injected += faults_injected;
        self.msg_retries += msg_retries;
        self.msg_nacks += msg_nacks;
        self.retry_budget_exhausted += retry_budget_exhausted;
        self.dir_entries_lost += dir_entries_lost;
        self.fault_delay_cycles += fault_delay_cycles;
        self.protocol_recoveries += protocol_recoveries;
        self.task_retries += task_retries;
        self.task_straggles += task_straggles;
        self.watchdog_fires += watchdog_fires;
        self.mode_downgrades += mode_downgrades;
    }
}

impl raccd_snap::Snap for Stats {
    fn save(&self, w: &mut raccd_snap::SnapWriter) {
        // Exhaustive destructure: adding a Stats field without a snap arm
        // is a compile error, mirroring `merge` above.
        let Stats {
            cycles,
            l1_hits,
            l1_misses,
            l1_writebacks,
            write_throughs,
            tlb_hits,
            tlb_misses,
            dir_accesses,
            dir_allocations,
            dir_evictions,
            dir_avg_occupancy,
            dir_access_hist: ref hist,
            dir_capacity_integral,
            adr_reconfigs,
            adr_blocked_cycles,
            llc_hits,
            llc_misses,
            llc_inclusion_invalidations,
            invalidations_sent,
            owner_forwards,
            nc_fills,
            coherent_fills,
            bank_wait_cycles,
            noc_traffic,
            noc_flits,
            mem_reads,
            mem_writes,
            register_cycles,
            invalidate_cycles,
            nc_lines_flushed,
            ncrt_overflows,
            pt_shared_transitions,
            pt_flush_lines,
            tasks_executed,
            refs_processed,
            busy_cycles,
            contexts,
            task_migrations,
            ncrt_migrations,
            preemptions,
            sched_pushed,
            sched_popped,
            sched_local_pops,
            sched_steals,
            faults_injected,
            msg_retries,
            msg_nacks,
            retry_budget_exhausted,
            dir_entries_lost,
            fault_delay_cycles,
            protocol_recoveries,
            task_retries,
            task_straggles,
            watchdog_fires,
            mode_downgrades,
        } = *self;
        w.u64(cycles);
        w.u64(l1_hits);
        w.u64(l1_misses);
        w.u64(l1_writebacks);
        w.u64(write_throughs);
        w.u64(tlb_hits);
        w.u64(tlb_misses);
        w.u64(dir_accesses);
        w.u64(dir_allocations);
        w.u64(dir_evictions);
        dir_avg_occupancy.save(w);
        hist.save(w);
        dir_capacity_integral.save(w);
        w.u64(adr_reconfigs);
        w.u64(adr_blocked_cycles);
        w.u64(llc_hits);
        w.u64(llc_misses);
        w.u64(llc_inclusion_invalidations);
        w.u64(invalidations_sent);
        w.u64(owner_forwards);
        w.u64(nc_fills);
        w.u64(coherent_fills);
        w.u64(bank_wait_cycles);
        w.u64(noc_traffic);
        w.u64(noc_flits);
        w.u64(mem_reads);
        w.u64(mem_writes);
        w.u64(register_cycles);
        w.u64(invalidate_cycles);
        w.u64(nc_lines_flushed);
        w.u64(ncrt_overflows);
        w.u64(pt_shared_transitions);
        w.u64(pt_flush_lines);
        w.u64(tasks_executed);
        w.u64(refs_processed);
        w.u64(busy_cycles);
        contexts.save(w);
        w.u64(task_migrations);
        w.u64(ncrt_migrations);
        w.u64(preemptions);
        w.u64(sched_pushed);
        w.u64(sched_popped);
        w.u64(sched_local_pops);
        w.u64(sched_steals);
        w.u64(faults_injected);
        w.u64(msg_retries);
        w.u64(msg_nacks);
        w.u64(retry_budget_exhausted);
        w.u64(dir_entries_lost);
        w.u64(fault_delay_cycles);
        w.u64(protocol_recoveries);
        w.u64(task_retries);
        w.u64(task_straggles);
        w.u64(watchdog_fires);
        w.u64(mode_downgrades);
    }
    fn load(r: &mut raccd_snap::SnapReader) -> Result<Self, raccd_snap::SnapError> {
        use raccd_snap::Snap;
        Ok(Stats {
            cycles: r.u64()?,
            l1_hits: r.u64()?,
            l1_misses: r.u64()?,
            l1_writebacks: r.u64()?,
            write_throughs: r.u64()?,
            tlb_hits: r.u64()?,
            tlb_misses: r.u64()?,
            dir_accesses: r.u64()?,
            dir_allocations: r.u64()?,
            dir_evictions: r.u64()?,
            dir_avg_occupancy: Snap::load(r)?,
            dir_access_hist: Snap::load(r)?,
            dir_capacity_integral: Snap::load(r)?,
            adr_reconfigs: r.u64()?,
            adr_blocked_cycles: r.u64()?,
            llc_hits: r.u64()?,
            llc_misses: r.u64()?,
            llc_inclusion_invalidations: r.u64()?,
            invalidations_sent: r.u64()?,
            owner_forwards: r.u64()?,
            nc_fills: r.u64()?,
            coherent_fills: r.u64()?,
            bank_wait_cycles: r.u64()?,
            noc_traffic: r.u64()?,
            noc_flits: r.u64()?,
            mem_reads: r.u64()?,
            mem_writes: r.u64()?,
            register_cycles: r.u64()?,
            invalidate_cycles: r.u64()?,
            nc_lines_flushed: r.u64()?,
            ncrt_overflows: r.u64()?,
            pt_shared_transitions: r.u64()?,
            pt_flush_lines: r.u64()?,
            tasks_executed: r.u64()?,
            refs_processed: r.u64()?,
            busy_cycles: r.u64()?,
            contexts: Snap::load(r)?,
            task_migrations: r.u64()?,
            ncrt_migrations: r.u64()?,
            preemptions: r.u64()?,
            sched_pushed: r.u64()?,
            sched_popped: r.u64()?,
            sched_local_pops: r.u64()?,
            sched_steals: r.u64()?,
            faults_injected: r.u64()?,
            msg_retries: r.u64()?,
            msg_nacks: r.u64()?,
            retry_budget_exhausted: r.u64()?,
            dir_entries_lost: r.u64()?,
            fault_delay_cycles: r.u64()?,
            protocol_recoveries: r.u64()?,
            task_retries: r.u64()?,
            task_straggles: r.u64()?,
            watchdog_fires: r.u64()?,
            mode_downgrades: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_totals() {
        let s = Stats::default();
        assert_eq!(s.llc_hit_ratio(), 0.0);
        assert_eq!(s.l1_hit_ratio(), 0.0);
        assert_eq!(s.nc_fill_fraction(), 0.0);
    }

    #[test]
    fn utilization_bounds() {
        let s = Stats {
            cycles: 100,
            contexts: 4,
            busy_cycles: 200,
            ..Stats::default()
        };
        assert!((s.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(Stats::default().utilization(), 0.0);
    }

    #[test]
    fn merge_sums_counters_and_merges_hist() {
        let mut a = Stats {
            cycles: 100,
            dir_accesses: 10,
            contexts: 8,
            dir_access_hist: vec![(64, 5), (128, 2)],
            ..Stats::default()
        };
        let b = Stats {
            cycles: 50,
            dir_accesses: 4,
            contexts: 8,
            dir_access_hist: vec![(32, 1), (64, 3)],
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.dir_accesses, 14);
        assert_eq!(a.contexts, 8, "same machine, not summed");
        // Shared key 64 adds; disjoint keys union, sorted by capacity.
        assert_eq!(a.dir_access_hist, vec![(32, 1), (64, 8), (128, 2)]);
    }

    #[test]
    fn merge_weights_occupancy_by_capacity_integral() {
        let mut a = Stats {
            dir_avg_occupancy: 0.8,
            dir_capacity_integral: 1000,
            ..Stats::default()
        };
        let b = Stats {
            dir_avg_occupancy: 0.2,
            dir_capacity_integral: 3000,
            ..Stats::default()
        };
        a.merge(&b);
        // (0.8·1000 + 0.2·3000) / 4000 = 0.35 — NOT the naive mean 0.5.
        assert!((a.dir_avg_occupancy - 0.35).abs() < 1e-12);
        assert_eq!(a.dir_capacity_integral, 4000);
    }

    #[test]
    fn merge_occupancy_falls_back_to_cycle_weights() {
        let mut a = Stats {
            dir_avg_occupancy: 1.0,
            cycles: 10,
            ..Stats::default()
        };
        let b = Stats {
            dir_avg_occupancy: 0.0,
            cycles: 30,
            ..Stats::default()
        };
        a.merge(&b);
        assert!((a.dir_avg_occupancy - 0.25).abs() < 1e-12);
        // Both sides empty: plain mean, no NaN.
        let mut e = Stats {
            dir_avg_occupancy: 0.5,
            ..Stats::default()
        };
        e.merge(&Stats::default());
        assert!((e.dir_avg_occupancy - 0.25).abs() < 1e-12);
        assert!(e.dir_avg_occupancy.is_finite());
    }

    #[test]
    fn merge_into_default_is_identity_for_counters() {
        let mut a = Stats::default();
        let b = Stats {
            cycles: 7,
            nc_fills: 3,
            dir_avg_occupancy: 0.4,
            dir_capacity_integral: 500,
            dir_access_hist: vec![(64, 9)],
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 7);
        assert_eq!(a.nc_fills, 3);
        assert!((a.dir_avg_occupancy - 0.4).abs() < 1e-12);
        assert_eq!(a.dir_access_hist, vec![(64, 9)]);
    }

    /// Every field populated with a distinct value, via an exhaustive
    /// struct literal: adding a `Stats` field without updating this test
    /// (and therefore without deciding its merge and snapshot behaviour)
    /// is a compile error.
    fn fully_populated() -> Stats {
        Stats {
            cycles: 1,
            l1_hits: 2,
            l1_misses: 3,
            l1_writebacks: 4,
            write_throughs: 5,
            tlb_hits: 6,
            tlb_misses: 7,
            dir_accesses: 8,
            dir_allocations: 9,
            dir_evictions: 10,
            dir_avg_occupancy: 0.25,
            dir_access_hist: vec![(32, 11), (64, 12)],
            dir_capacity_integral: 1024,
            adr_reconfigs: 13,
            adr_blocked_cycles: 14,
            llc_hits: 15,
            llc_misses: 16,
            llc_inclusion_invalidations: 17,
            invalidations_sent: 18,
            owner_forwards: 19,
            nc_fills: 20,
            coherent_fills: 21,
            bank_wait_cycles: 22,
            noc_traffic: 23,
            noc_flits: 24,
            mem_reads: 25,
            mem_writes: 26,
            register_cycles: 27,
            invalidate_cycles: 28,
            nc_lines_flushed: 29,
            ncrt_overflows: 30,
            pt_shared_transitions: 31,
            pt_flush_lines: 32,
            tasks_executed: 33,
            refs_processed: 34,
            busy_cycles: 35,
            contexts: 36,
            task_migrations: 37,
            ncrt_migrations: 49,
            preemptions: 50,
            sched_pushed: 51,
            sched_popped: 52,
            sched_local_pops: 53,
            sched_steals: 54,
            faults_injected: 38,
            msg_retries: 39,
            msg_nacks: 40,
            retry_budget_exhausted: 41,
            dir_entries_lost: 42,
            fault_delay_cycles: 43,
            protocol_recoveries: 44,
            task_retries: 45,
            task_straggles: 46,
            watchdog_fires: 47,
            mode_downgrades: 48,
        }
    }

    #[test]
    fn merge_is_complete_over_every_field() {
        // Merging a fully-populated Stats into a default one must carry
        // every field over — in particular all eleven fault/resilience
        // counters (faults_injected, msg_retries, msg_nacks,
        // retry_budget_exhausted, dir_entries_lost, fault_delay_cycles,
        // protocol_recoveries, task_retries, task_straggles,
        // watchdog_fires, mode_downgrades). A counter whose merge arm is
        // missing stays 0 and fails the whole-struct equality.
        let full = fully_populated();
        let mut merged = Stats::default();
        merged.merge(&full);
        assert_eq!(merged, full);
    }

    #[test]
    fn snapshot_roundtrip_is_complete_over_every_field() {
        use raccd_snap::Snap;
        let full = fully_populated();
        let mut w = raccd_snap::SnapWriter::default();
        full.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = raccd_snap::SnapReader::new(&bytes);
        let back = Stats::load(&mut r).expect("stats decode");
        assert_eq!(r.remaining(), 0, "decode consumed every byte");
        assert_eq!(back, full);
    }

    #[test]
    fn ratios_compute() {
        let s = Stats {
            llc_hits: 3,
            llc_misses: 1,
            l1_hits: 9,
            l1_misses: 1,
            nc_fills: 1,
            coherent_fills: 3,
            ..Stats::default()
        };
        assert!((s.llc_hit_ratio() - 0.75).abs() < 1e-12);
        assert!((s.l1_hit_ratio() - 0.9).abs() < 1e-12);
        assert!((s.nc_fill_fraction() - 0.25).abs() < 1e-12);
    }
}
