//! Property tests of the Cholesky workload end-to-end on random SPD
//! matrices: tile sizes, tile counts and seeds must all produce valid
//! factorisations (the tiled algorithm is numerically equivalent to the
//! textbook one).

use proptest::prelude::*;
use raccd_runtime::Workload;
use raccd_workloads::cholesky::Cholesky;
use raccd_workloads::Scale;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tiled_factorisation_verifies(
        tiles in 1u64..5,
        t in prop_oneof![Just(4u64), Just(8), Just(16)],
        seed in 0u64..1000,
    ) {
        let w = Cholesky { tiles, t, seed };
        let mut p = w.build();
        p.run_functional();
        prop_assert!(w.verify(&p.mem).is_ok(), "tiles={tiles} t={t} seed={seed}");
    }

    #[test]
    fn task_count_formula_holds(tiles in 1u64..7) {
        let w = Cholesky { tiles, t: 4, seed: 1 };
        let p = w.build();
        let gemms = tiles * (tiles.saturating_sub(1)) * (tiles.saturating_sub(2)) / 6;
        let expect = tiles + tiles * (tiles.saturating_sub(1)) + gemms;
        prop_assert_eq!(p.graph.len() as u64, expect);
    }

    #[test]
    fn critical_path_starts_at_first_potrf(tiles in 2u64..6) {
        let w = Cholesky { tiles, t: 4, seed: 2 };
        let p = w.build();
        prop_assert_eq!(p.graph.initially_ready(), vec![0]);
    }
}

#[test]
fn default_scales_verify() {
    for scale in [Scale::Test, Scale::Bench] {
        let w = Cholesky::new(scale);
        let mut p = w.build();
        p.run_functional();
        assert!(w.verify(&p.mem).is_ok(), "{scale}");
    }
}

/// Named regression for the seed committed in
/// `cholesky_kernels.proptest-regressions`: the degenerate single-tile
/// factorisation (`tiles = 1`) — one POTRF, no TRSM/SYRK/GEMM — once
/// failed verification. The offline proptest shim does not replay
/// regression files, so the shrunken case is pinned deterministically
/// across the kernel sizes the property test draws from.
#[test]
fn regression_single_tile_factorisation() {
    // cc 3726c654…: shrinks to tiles = 1
    for t in [4u64, 8, 16] {
        let w = Cholesky {
            tiles: 1,
            t,
            seed: 0,
        };
        let mut p = w.build();
        assert_eq!(p.graph.len(), 1, "single tile is one POTRF task");
        p.run_functional();
        assert!(w.verify(&p.mem).is_ok(), "tiles=1 t={t}");
    }
}
