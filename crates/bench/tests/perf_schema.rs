//! The committed `BENCH_7.json` perf-trajectory file must stay valid:
//! it parses under the strict schema, covers the pinned matrix
//! (including the epoch-parallel twins and the fig7-sweep engine-speedup
//! pair), carries the required throughput metrics, and compares clean
//! against itself. Any schema drift has to come with a `SCHEMA_VERSION`
//! bump and a regenerated file — this test is what makes that drift loud.

use raccd_bench::perfjson::{compare, BenchDoc, SCHEMA_VERSION};
use raccd_prof::Site;
use std::path::PathBuf;

fn committed_doc() -> BenchDoc {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_7.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    BenchDoc::parse(&text).expect("committed BENCH_7.json parses under the current schema")
}

#[test]
fn golden_file_is_schema_valid() {
    let doc = committed_doc();
    assert_eq!(doc.schema_version, SCHEMA_VERSION);
    assert!(!doc.git_rev.is_empty() && !doc.host.is_empty());
    assert!(doc.reps >= 1);
    assert!(
        doc.jobs.len() >= 6,
        "pinned matrix present, got {} jobs",
        doc.jobs.len()
    );
    // The matrix covers both systems, profiled and plain.
    for mode in ["raccd", "fullcoh"] {
        for profiled in [false, true] {
            assert!(
                doc.jobs
                    .iter()
                    .any(|j| j.mode == mode && j.profiled == profiled),
                "matrix covers {mode}/profiled={profiled}"
            );
        }
        // ... and the epoch-parallel twin of every (workload, mode) cell.
        assert!(
            doc.jobs
                .iter()
                .any(|j| j.mode == mode && j.name.ends_with("/par4")),
            "matrix covers {mode} under the epoch-parallel engine"
        );
    }
    // The fig7-sweep engine-speedup pair is the trajectory's record of
    // the parallel engine's wall-clock effect.
    for engine in ["serial", "par4"] {
        assert!(
            doc.jobs
                .iter()
                .any(|j| j.name == format!("fig7-sweep/{engine}")),
            "fig7-sweep/{engine} job present"
        );
    }
}

#[test]
fn golden_file_carries_throughput_metrics() {
    let doc = committed_doc();
    for j in &doc.jobs {
        if j.name == "snapshot-codec" {
            continue;
        }
        assert!(j.metrics.cycles_per_sec() > 0.0, "{}: cycles/sec", j.name);
        assert!(j.metrics.events_per_sec() > 0.0, "{}: events/sec", j.name);
        assert!(j.metrics.refs_per_sec() > 0.0, "{}: refs/sec", j.name);
    }
    let snap = doc
        .jobs
        .iter()
        .find(|j| j.name == "snapshot-codec")
        .expect("snapshot microbench job present");
    assert!(snap.metrics.snap_encode_bytes_per_sec().is_some());
    assert!(snap.metrics.snap_decode_bytes_per_sec().is_some());
    // The measured profiler overhead is reported (any finite value).
    assert!(doc.prof_overhead_pct.is_finite());
}

#[test]
fn golden_file_span_table_is_populated() {
    let doc = committed_doc();
    assert!(!doc.spans.is_empty());
    for site in [
        Site::Step,
        Site::MemRef,
        Site::CacheLookup,
        Site::DirAccess,
        Site::NocXmit,
        Site::SnapEncode,
        Site::SnapDecode,
    ] {
        assert!(
            doc.spans.get(site).count > 0,
            "span table covers {}",
            site.name()
        );
    }
}

#[test]
fn golden_file_round_trips_and_self_compares_clean() {
    let doc = committed_doc();
    let reparsed = BenchDoc::parse(&doc.render()).expect("render/parse round trip");
    assert_eq!(reparsed, doc);
    let out = compare(&doc, &doc);
    assert!(out.clean(), "{:?}", out.lines);
    assert!(out.compared >= 6);
}
