//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of the criterion API its benches use: `Criterion`,
//! `bench_function`, `benchmark_group` (+ `sample_size`, `finish`),
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a plain wall-clock
//! mean/min/max over `sample_size` timed samples after one warm-up sample,
//! printed to stdout — no statistics engine, plots, or saved baselines.

use std::time::{Duration, Instant};

/// Opaque-value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{name:<40} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        samples.len()
    );
}

impl Criterion {
    /// Samples measured per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark (the name may be `&str` or `String`, as in
    /// criterion's `IntoBenchmarkId`).
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name.as_ref(), &b.samples);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("# group {name}");
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples measured per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark in the group.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.prefix, name.as_ref()), &b.samples);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Declare a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut n = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("count", |b| b.iter(|| n += 1));
        assert_eq!(n, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut hits = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("x", |b| b.iter(|| hits += 1));
            g.finish();
        }
        assert_eq!(hits, 3);
    }
}
