//! Log2-bucketed latency histograms.
//!
//! Cycle-latency distributions in the simulator span four orders of
//! magnitude (a 2-cycle L1 hit to a multi-thousand-cycle PT page flush), so
//! fixed-width buckets either blur the fast path or truncate the tail.
//! Power-of-two buckets give constant relative resolution with a 65-slot
//! array and a branch-free `leading_zeros` bucket index.

/// A histogram whose bucket `i` counts values `v` with
/// `bucket_floor(i) <= v < bucket_floor(i+1)` where `bucket_floor(0) = 0`,
/// `bucket_floor(1) = 1`, and `bucket_floor(i) = 2^(i-1)` beyond that.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist::new()
    }
}

impl Log2Hist {
    /// Empty histogram.
    pub fn new() -> Self {
        Log2Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index of a value: 0 for 0, otherwise `bit_length(v)`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_floor(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of the bucket containing the `q`-quantile,
    /// `q` in `[0, 1]`. An upper bound because per-bucket positions are not
    /// retained. Returns 0 when empty.
    pub fn quantile_ceil(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i holds values in [floor(i), floor(i+1)).
                return if i == 64 {
                    self.max
                } else {
                    Self::bucket_floor(i + 1) - 1
                };
            }
        }
        self.max
    }

    /// Accumulate another histogram into this one.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_floor(i), n))
    }

    /// Render as an aligned text table with a bar per bucket.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!(
            "# {title}: n={} mean={:.1} p50<={} p99<={} max={}\n",
            self.count,
            self.mean(),
            self.quantile_ceil(0.50),
            self.quantile_ceil(0.99),
            self.max
        );
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let hi = if i == 64 {
                u64::MAX
            } else {
                Self::bucket_floor(i + 1) - 1
            };
            let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
            out.push_str(&format!(
                "{:>12}..{:<12} {:>10} {}\n",
                Self::bucket_floor(i),
                hi,
                n,
                bar
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(2), 2);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 3);
        assert_eq!(Log2Hist::bucket_of(1023), 10);
        assert_eq!(Log2Hist::bucket_of(1024), 11);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 64);
        for i in 1..64 {
            // floor(i) really is the smallest value landing in bucket i.
            assert_eq!(Log2Hist::bucket_of(Log2Hist::bucket_floor(i)), i);
            assert_eq!(Log2Hist::bucket_of(Log2Hist::bucket_floor(i) - 1), i - 1);
        }
    }

    #[test]
    fn mean_and_quantiles() {
        let mut h = Log2Hist::new();
        for v in [0, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert!((h.mean() - 1110.0 / 7.0).abs() < 1e-9);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile_ceil(0.5) <= 7, "median value is 3");
        assert_eq!(h.quantile_ceil(1.0), 1023, "p100 bucket holds 1000");
        assert_eq!(Log2Hist::new().quantile_ceil(0.5), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        a.record(5);
        b.record(5);
        b.record(700);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 710);
        assert_eq!(a.max(), 700);
        let buckets: Vec<_> = a.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(4, 2), (512, 1)]);
    }

    #[test]
    fn render_contains_stats() {
        let mut h = Log2Hist::new();
        h.record(10);
        let r = h.render("latency");
        assert!(r.contains("latency"));
        assert!(r.contains("n=1"));
        assert!(r.contains('#'));
    }
}
