//! Terminal bar charts for the figure binaries (`--chart`).
//!
//! The paper's figures are grouped bar charts (Figures 2, 8, 9, 10) and
//! line families (Figures 6, 7). A horizontal-bar rendering keeps both
//! readable in a terminal and in committed text output.

/// Render a horizontal bar chart. `rows` are `(label, value)`; values are
/// scaled so the largest bar spans `width` characters.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let mut out = format!("{title}\n");
    let max = rows.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let filled = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} |{}{} {value:.1}\n",
            "█".repeat(filled),
            " ".repeat(width - filled.min(width)),
        ));
    }
    out
}

/// Render a grouped bar chart: one block per group, one bar per series.
/// `groups` are `(group_label, values)` with `values.len() == series.len()`.
pub fn grouped_bar_chart(
    title: &str,
    series: &[&str],
    groups: &[(String, Vec<f64>)],
    width: usize,
) -> String {
    let mut out = format!("{title}\n");
    let max = groups
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0f64, f64::max);
    let label_w = series
        .iter()
        .map(|s| s.len())
        .chain(groups.iter().map(|(g, _)| g.len()))
        .max()
        .unwrap_or(0);
    for (group, values) in groups {
        out.push_str(&format!("{group}\n"));
        for (s, v) in series.iter().zip(values) {
            let filled = if max > 0.0 {
                ((v / max) * width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!("  {s:<label_w$} |{} {v:.2}\n", "█".repeat(filled)));
        }
    }
    out
}

/// Whether `--chart` was requested.
pub fn chart_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--chart")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let rows = vec![("a".to_string(), 50.0), ("bb".to_string(), 100.0)];
        let c = bar_chart("t", &rows, 10);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "t");
        assert!(lines[1].contains(&"█".repeat(5)));
        assert!(!lines[1].contains(&"█".repeat(6)));
        assert!(lines[2].contains(&"█".repeat(10)));
        assert!(lines[2].contains("100.0"));
    }

    #[test]
    fn zero_values_render_empty_bars() {
        let rows = vec![("x".to_string(), 0.0)];
        let c = bar_chart("t", &rows, 8);
        assert!(c.contains("| "), "no fill for zero");
    }

    #[test]
    fn grouped_chart_emits_all_series() {
        let groups = vec![
            ("G1".to_string(), vec![1.0, 2.0]),
            ("G2".to_string(), vec![2.0, 4.0]),
        ];
        let c = grouped_bar_chart("t", &["PT", "RaCCD"], &groups, 12);
        assert_eq!(c.matches("PT").count(), 2);
        assert_eq!(c.matches("RaCCD").count(), 2);
        assert!(c.contains("G1\n"));
        // Largest value (4.0) spans the full width.
        assert!(c.contains(&"█".repeat(12)));
    }

    #[test]
    fn flag_detection() {
        assert!(chart_requested(&["--chart".to_string()]));
        assert!(!chart_requested(&["--scale".to_string()]));
    }
}
